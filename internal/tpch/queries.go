package tpch

import (
	"fmt"

	"voodoo/internal/exec"
	"voodoo/internal/rel"
	"voodoo/internal/storage"
)

// QueryFunc executes one TPC-H query through a query runner (the Voodoo
// engine or a baseline). Multi-phase queries (11, 15, 20) run several plans
// and merge stats.
type QueryFunc func(e rel.Runner) (*rel.Result, *exec.Stats, error)

// QueryNumbers lists the evaluated queries in paper order (Figure 13).
var QueryNumbers = []int{1, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14, 15, 19, 20}

// GPUQueryNumbers lists the queries Figure 12 runs (Ocelot does not support
// the rest).
var GPUQueryNumbers = []int{1, 4, 5, 6, 8, 12, 19}

// Query returns the QueryFunc for a TPC-H query number.
func Query(num int) (QueryFunc, error) {
	switch num {
	case 1:
		return Q1, nil
	case 4:
		return Q4, nil
	case 5:
		return Q5, nil
	case 6:
		return Q6, nil
	case 7:
		return Q7, nil
	case 8:
		return Q8, nil
	case 9:
		return Q9, nil
	case 10:
		return Q10, nil
	case 11:
		return Q11, nil
	case 12:
		return Q12, nil
	case 14:
		return Q14, nil
	case 15:
		return Q15, nil
	case 19:
		return Q19, nil
	case 20:
		return Q20, nil
	}
	return nil, fmt.Errorf("tpch: query %d is not part of the evaluation", num)
}

// code resolves a dictionary literal; a missing value yields -1, which
// matches nothing.
func code(e rel.Runner, table, col, val string) int64 {
	t := e.Catalog().Table(table)
	if t == nil {
		return -1
	}
	c, ok := t.Code(col, val)
	if !ok {
		return -1
	}
	return c
}

// codesContaining collects the dictionary codes whose strings contain sub.
func codesContaining(e rel.Runner, table, col, sub string) []int64 {
	t := e.Catalog().Table(table)
	if t == nil {
		return nil
	}
	d, ok := t.Def(col)
	if !ok {
		return nil
	}
	var out []int64
	for i, s := range d.Dict {
		if contains(s, sub) {
			out = append(out, int64(i))
		}
	}
	return out
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// prefixRange returns the inclusive dictionary code range of strings with
// the given prefix (empty range when none).
func prefixRange(e rel.Runner, table, col, prefix string) (int64, int64) {
	t := e.Catalog().Table(table)
	lo := t.CodeLowerBound(col, prefix)
	hi := t.CodeLowerBound(col, prefix+"\xff") - 1
	return lo, hi
}

// nationKey returns the n_nationkey of a nation name.
func nationKey(name string) int64 {
	for i, n := range nations {
		if n.name == name {
			return int64(i)
		}
	}
	return -1
}

// regionKey returns the r_regionkey of a region name.
func regionKey(name string) int64 {
	for i, r := range regions {
		if r == name {
			return int64(i)
		}
	}
	return -1
}

// revenue is l_extendedprice * (1 - l_discount).
func revenue() rel.Expr {
	return rel.B(rel.Mul, rel.C("l_extendedprice"),
		rel.B(rel.Sub, rel.F(1), rel.C("l_discount")))
}

// Q1: pricing summary report.
func Q1(e rel.Runner) (*rel.Result, *exec.Stats, error) {
	cutoff := Date("1998-12-01") - 90
	q := rel.Query{
		Root: rel.GroupAgg{
			In: rel.Filter{
				In: rel.Scan{Table: "lineitem", Cols: []string{
					"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
					"l_discount", "l_tax", "l_shipdate"}},
				Pred: rel.B(rel.Le, rel.C("l_shipdate"), rel.I(cutoff)),
			},
			Keys: []string{"l_returnflag", "l_linestatus"},
			Aggs: []rel.AggSpec{
				{Func: rel.Sum, E: rel.C("l_quantity"), As: "sum_qty"},
				{Func: rel.Sum, E: rel.C("l_extendedprice"), As: "sum_base_price"},
				{Func: rel.Sum, E: revenue(), As: "sum_disc_price"},
				{Func: rel.Sum, E: rel.B(rel.Mul, revenue(),
					rel.B(rel.Add, rel.F(1), rel.C("l_tax"))), As: "sum_charge"},
				{Func: rel.Avg, E: rel.C("l_quantity"), As: "avg_qty"},
				{Func: rel.Avg, E: rel.C("l_extendedprice"), As: "avg_price"},
				{Func: rel.Avg, E: rel.C("l_discount"), As: "avg_disc"},
				{Func: rel.Count, As: "count_order"},
			},
		},
		OrderBy: func(a, b rel.Row) bool {
			if a["l_returnflag"] != b["l_returnflag"] {
				return a["l_returnflag"] < b["l_returnflag"]
			}
			return a["l_linestatus"] < b["l_linestatus"]
		},
	}
	return e.Run(q)
}

// Q4: order priority checking (EXISTS semi join).
func Q4(e rel.Runner) (*rel.Result, *exec.Stats, error) {
	lo := Date("1993-07-01")
	hi := DateAdd(lo, 0, 3, 0)
	q := rel.Query{
		Root: rel.GroupAgg{
			In: rel.IndexJoin{
				Probe: rel.Filter{
					In: rel.Scan{Table: "orders", Cols: []string{
						"o_orderkey", "o_orderdate", "o_orderpriority"}},
					Pred: rel.B(rel.And,
						rel.B(rel.Ge, rel.C("o_orderdate"), rel.I(lo)),
						rel.B(rel.Lt, rel.C("o_orderdate"), rel.I(hi))),
				},
				ProbeKey: "o_orderkey",
				Build: rel.Filter{
					In: rel.Scan{Table: "lineitem", Cols: []string{
						"l_orderkey", "l_commitdate", "l_receiptdate"}},
					Pred: rel.B(rel.Lt, rel.C("l_commitdate"), rel.C("l_receiptdate")),
				},
				BuildKey: "l_orderkey",
				Semi:     true,
			},
			Keys: []string{"o_orderpriority"},
			Aggs: []rel.AggSpec{{Func: rel.Count, As: "order_count"}},
		},
		OrderBy: func(a, b rel.Row) bool { return a["o_orderpriority"] < b["o_orderpriority"] },
	}
	return e.Run(q)
}

// Q5: local supplier volume (six-table join).
func Q5(e rel.Runner) (*rel.Result, *exec.Stats, error) {
	lo := Date("1994-01-01")
	hi := DateAdd(lo, 1, 0, 0)
	asiaNations := rel.IndexJoin{
		Probe:    rel.Scan{Table: "nation", Cols: []string{"n_nationkey", "n_regionkey"}},
		ProbeKey: "n_regionkey",
		Build: rel.Filter{
			In:   rel.Scan{Table: "region", Cols: []string{"r_regionkey", "r_name"}},
			Pred: rel.B(rel.Eq, rel.C("r_name"), rel.I(code(e, "region", "r_name", "ASIA"))),
		},
		BuildKey: "r_regionkey",
		Semi:     true,
	}
	asiaSuppliers := rel.IndexJoin{
		Probe:    rel.Scan{Table: "supplier", Cols: []string{"s_suppkey", "s_nationkey"}},
		ProbeKey: "s_nationkey",
		Build:    asiaNations,
		BuildKey: "n_nationkey",
		Semi:     true,
	}
	j1 := rel.IndexJoin{
		Probe: rel.Scan{Table: "lineitem", Cols: []string{
			"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"}},
		ProbeKey: "l_orderkey",
		Build: rel.Filter{
			In: rel.Scan{Table: "orders", Cols: []string{"o_orderkey", "o_custkey", "o_orderdate"}},
			Pred: rel.B(rel.And,
				rel.B(rel.Ge, rel.C("o_orderdate"), rel.I(lo)),
				rel.B(rel.Lt, rel.C("o_orderdate"), rel.I(hi))),
		},
		BuildKey: "o_orderkey",
		Cols:     []string{"o_custkey"},
	}
	j2 := rel.IndexJoin{
		Probe: j1, ProbeKey: "o_custkey",
		Build:    rel.Scan{Table: "customer", Cols: []string{"c_custkey", "c_nationkey"}},
		BuildKey: "c_custkey",
		Cols:     []string{"c_nationkey"},
	}
	j3 := rel.IndexJoin{
		Probe: j2, ProbeKey: "l_suppkey",
		Build:    asiaSuppliers,
		BuildKey: "s_suppkey",
		Cols:     []string{"s_nationkey"},
	}
	q := rel.Query{
		Root: rel.GroupAgg{
			In: rel.Filter{
				In:   j3,
				Pred: rel.B(rel.Eq, rel.C("c_nationkey"), rel.C("s_nationkey")),
			},
			Keys: []string{"s_nationkey"},
			Aggs: []rel.AggSpec{{Func: rel.Sum, E: revenue(), As: "revenue"}},
		},
		OrderBy: func(a, b rel.Row) bool { return a["revenue"] > b["revenue"] },
	}
	return e.Run(q)
}

// Q6: forecasting revenue change.
func Q6(e rel.Runner) (*rel.Result, *exec.Stats, error) {
	lo := Date("1994-01-01")
	hi := DateAdd(lo, 1, 0, 0)
	q := rel.Query{Root: rel.GroupAgg{
		In: rel.Filter{
			In: rel.Scan{Table: "lineitem", Cols: []string{
				"l_shipdate", "l_discount", "l_quantity", "l_extendedprice"}},
			Pred: rel.B(rel.And,
				rel.B(rel.And,
					rel.B(rel.Ge, rel.C("l_shipdate"), rel.I(lo)),
					rel.B(rel.Lt, rel.C("l_shipdate"), rel.I(hi))),
				rel.B(rel.And,
					rel.Between{E: rel.C("l_discount"), Lo: rel.F(0.0499), Hi: rel.F(0.0701)},
					rel.B(rel.Lt, rel.C("l_quantity"), rel.I(24)))),
		},
		Aggs: []rel.AggSpec{{Func: rel.Sum,
			E: rel.B(rel.Mul, rel.C("l_extendedprice"), rel.C("l_discount")), As: "revenue"}},
	}}
	return e.Run(q)
}

// Q7: volume shipping between France and Germany.
func Q7(e rel.Runner) (*rel.Result, *exec.Stats, error) {
	fr, de := nationKey("FRANCE"), nationKey("GERMANY")
	j := rel.IndexJoin{
		Probe: rel.IndexJoin{
			Probe: rel.IndexJoin{
				Probe: rel.Filter{
					In: rel.Scan{Table: "lineitem", Cols: []string{
						"l_orderkey", "l_suppkey", "l_shipdate", "l_shipyear",
						"l_extendedprice", "l_discount"}},
					Pred: rel.Between{E: rel.C("l_shipdate"),
						Lo: rel.I(Date("1995-01-01")), Hi: rel.I(Date("1996-12-31"))},
				},
				ProbeKey: "l_orderkey",
				Build:    rel.Scan{Table: "orders", Cols: []string{"o_orderkey", "o_custkey"}},
				BuildKey: "o_orderkey",
				Cols:     []string{"o_custkey"},
			},
			ProbeKey: "o_custkey",
			Build:    rel.Scan{Table: "customer", Cols: []string{"c_custkey", "c_nationkey"}},
			BuildKey: "c_custkey",
			Cols:     []string{"c_nationkey"},
		},
		ProbeKey: "l_suppkey",
		Build:    rel.Scan{Table: "supplier", Cols: []string{"s_suppkey", "s_nationkey"}},
		BuildKey: "s_suppkey",
		Cols:     []string{"s_nationkey"},
	}
	q := rel.Query{
		Root: rel.GroupAgg{
			In: rel.Filter{
				In: j,
				Pred: rel.B(rel.Or,
					rel.B(rel.And,
						rel.B(rel.Eq, rel.C("s_nationkey"), rel.I(fr)),
						rel.B(rel.Eq, rel.C("c_nationkey"), rel.I(de))),
					rel.B(rel.And,
						rel.B(rel.Eq, rel.C("s_nationkey"), rel.I(de)),
						rel.B(rel.Eq, rel.C("c_nationkey"), rel.I(fr)))),
			},
			Keys: []string{"s_nationkey", "c_nationkey", "l_shipyear"},
			Aggs: []rel.AggSpec{{Func: rel.Sum, E: revenue(), As: "revenue"}},
		},
		OrderBy: func(a, b rel.Row) bool {
			if a["s_nationkey"] != b["s_nationkey"] {
				return a["s_nationkey"] < b["s_nationkey"]
			}
			return a["l_shipyear"] < b["l_shipyear"]
		},
	}
	return e.Run(q)
}

// Q8: national market share.
func Q8(e rel.Runner) (*rel.Result, *exec.Stats, error) {
	brazil := nationKey("BRAZIL")
	america := regionKey("AMERICA")
	j := rel.IndexJoin{ // supplier nation for the case expression
		Probe: rel.IndexJoin{ // customer nation must be in AMERICA
			Probe: rel.IndexJoin{
				Probe: rel.IndexJoin{
					Probe: rel.IndexJoin{
						Probe: rel.Scan{Table: "lineitem", Cols: []string{
							"l_orderkey", "l_partkey", "l_suppkey",
							"l_extendedprice", "l_discount"}},
						ProbeKey: "l_partkey",
						Build: rel.Filter{
							In: rel.Scan{Table: "part", Cols: []string{"p_partkey", "p_type"}},
							Pred: rel.B(rel.Eq, rel.C("p_type"),
								rel.I(code(e, "part", "p_type", "ECONOMY ANODIZED STEEL"))),
						},
						BuildKey: "p_partkey",
					},
					ProbeKey: "l_orderkey",
					Build: rel.Filter{
						In: rel.Scan{Table: "orders", Cols: []string{
							"o_orderkey", "o_custkey", "o_orderdate", "o_orderyear"}},
						Pred: rel.Between{E: rel.C("o_orderdate"),
							Lo: rel.I(Date("1995-01-01")), Hi: rel.I(Date("1996-12-31"))},
					},
					BuildKey: "o_orderkey",
					Cols:     []string{"o_custkey", "o_orderyear"},
				},
				ProbeKey: "o_custkey",
				Build:    rel.Scan{Table: "customer", Cols: []string{"c_custkey", "c_nationkey"}},
				BuildKey: "c_custkey",
				Cols:     []string{"c_nationkey"},
			},
			ProbeKey: "c_nationkey",
			Build:    rel.Scan{Table: "nation", Cols: []string{"n_nationkey", "n_regionkey"}},
			BuildKey: "n_nationkey",
			Cols:     []string{"n_regionkey"},
		},
		ProbeKey: "l_suppkey",
		Build:    rel.Scan{Table: "supplier", Cols: []string{"s_suppkey", "s_nationkey"}},
		BuildKey: "s_suppkey",
		Cols:     []string{"s_nationkey"},
	}
	q := rel.Query{
		Root: rel.GroupAgg{
			In: rel.Map{
				In: rel.Filter{In: j,
					Pred: rel.B(rel.Eq, rel.C("n_regionkey"), rel.I(america))},
				Outs: []rel.NamedExpr{
					{Name: "volume", E: revenue()},
					{Name: "brazil_volume", E: rel.B(rel.Mul, revenue(),
						rel.B(rel.Eq, rel.C("s_nationkey"), rel.I(brazil)))},
				},
			},
			Keys: []string{"o_orderyear"},
			Aggs: []rel.AggSpec{
				{Func: rel.Sum, E: rel.C("brazil_volume"), As: "brazil"},
				{Func: rel.Sum, E: rel.C("volume"), As: "total"},
			},
		},
		OrderBy: func(a, b rel.Row) bool { return a["o_orderyear"] < b["o_orderyear"] },
	}
	res, st, err := e.Run(q)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range res.Rows {
		if r["total"] != 0 {
			r["mkt_share"] = r["brazil"] / r["total"]
		}
	}
	res.Cols = append(res.Cols, "mkt_share")
	return res, st, nil
}

// Q9: product type profit measure, joining partsupp through the dense
// composite id.
func Q9(e rel.Runner) (*rel.Result, *exec.Stats, error) {
	nSupp := e.Catalog().Table("supplier").N
	greens := codesContaining(e, "part", "p_name", "green")
	j := rel.IndexJoin{
		Probe: rel.Map{
			In: rel.IndexJoin{
				Probe: rel.IndexJoin{
					Probe: rel.IndexJoin{
						Probe: rel.Scan{Table: "lineitem", Cols: []string{
							"l_orderkey", "l_partkey", "l_suppkey", "l_quantity",
							"l_extendedprice", "l_discount"}},
						ProbeKey: "l_partkey",
						Build: rel.Filter{
							In:   rel.Scan{Table: "part", Cols: []string{"p_partkey", "p_name"}},
							Pred: rel.InList{E: rel.C("p_name"), Vs: greens},
						},
						BuildKey: "p_partkey",
					},
					ProbeKey: "l_suppkey",
					Build:    rel.Scan{Table: "supplier", Cols: []string{"s_suppkey", "s_nationkey"}},
					BuildKey: "s_suppkey",
					Cols:     []string{"s_nationkey"},
				},
				ProbeKey: "l_orderkey",
				Build:    rel.Scan{Table: "orders", Cols: []string{"o_orderkey", "o_orderyear"}},
				BuildKey: "o_orderkey",
				Cols:     []string{"o_orderyear"},
			},
			Outs: []rel.NamedExpr{{Name: "combo", E: comboExpr(nSupp)}},
		},
		ProbeKey: "combo",
		Build:    rel.Scan{Table: "partsupp", Cols: []string{"ps_comboid", "ps_supplycost"}},
		BuildKey: "ps_comboid",
		Cols:     []string{"ps_supplycost"},
	}
	q := rel.Query{
		Root: rel.GroupAgg{
			In: rel.Map{In: j, Outs: []rel.NamedExpr{{Name: "amount",
				E: rel.B(rel.Sub, revenue(),
					rel.B(rel.Mul, rel.C("ps_supplycost"), rel.C("l_quantity")))}}},
			Keys: []string{"s_nationkey", "o_orderyear"},
			Aggs: []rel.AggSpec{{Func: rel.Sum, E: rel.C("amount"), As: "sum_profit"}},
		},
		OrderBy: func(a, b rel.Row) bool {
			if a["s_nationkey"] != b["s_nationkey"] {
				return a["s_nationkey"] < b["s_nationkey"]
			}
			return a["o_orderyear"] > b["o_orderyear"]
		},
	}
	return e.Run(q)
}

// comboExpr recovers the dense partsupp id from (l_partkey, l_suppkey):
// j = ((l_suppkey-1-l_partkey) mod S) / (S/4); combo = (l_partkey-1)*4 + j.
func comboExpr(nSupp int) rel.Expr {
	s := int64(nSupp)
	// Modulo in the algebra is mathematical (non-negative), matching the
	// generator's recovery arithmetic.
	jpart := rel.B(rel.Sub, rel.B(rel.Sub, rel.C("l_suppkey"), rel.I(1)), rel.C("l_partkey"))
	// Voodoo Modulo yields non-negative results by definition.
	jmod := modExpr(jpart, s)
	j := rel.B(rel.Div, jmod, rel.I(s/SuppliersPerPart))
	return rel.B(rel.Add,
		rel.B(rel.Mul, rel.B(rel.Sub, rel.C("l_partkey"), rel.I(1)), rel.I(SuppliersPerPart)),
		j)
}

// modExpr is e mod m through the algebra's Modulo, which is non-negative by
// definition — matching the generator's recovery arithmetic.
func modExpr(e rel.Expr, m int64) rel.Expr {
	return rel.Bin{Op: rel.Mod, L: e, R: rel.IntLit{V: m}}
}

// Q10: returned item reporting (top 20 customers by lost revenue).
func Q10(e rel.Runner) (*rel.Result, *exec.Stats, error) {
	lo := Date("1993-10-01")
	hi := DateAdd(lo, 0, 3, 0)
	q := rel.Query{
		Root: rel.GroupAgg{
			In: rel.IndexJoin{
				Probe: rel.Filter{
					In: rel.Scan{Table: "lineitem", Cols: []string{
						"l_orderkey", "l_returnflag", "l_extendedprice", "l_discount"}},
					Pred: rel.B(rel.Eq, rel.C("l_returnflag"),
						rel.I(code(e, "lineitem", "l_returnflag", "R"))),
				},
				ProbeKey: "l_orderkey",
				Build: rel.Filter{
					In: rel.Scan{Table: "orders", Cols: []string{
						"o_orderkey", "o_custkey", "o_orderdate"}},
					Pred: rel.B(rel.And,
						rel.B(rel.Ge, rel.C("o_orderdate"), rel.I(lo)),
						rel.B(rel.Lt, rel.C("o_orderdate"), rel.I(hi))),
				},
				BuildKey: "o_orderkey",
				Cols:     []string{"o_custkey"},
			},
			Keys: []string{"o_custkey"},
			Aggs: []rel.AggSpec{{Func: rel.Sum, E: revenue(), As: "revenue"}},
		},
		OrderBy: func(a, b rel.Row) bool { return a["revenue"] > b["revenue"] },
		Limit:   20,
	}
	return e.Run(q)
}

// Q11: important stock identification (two phases: total value, then the
// groups above the threshold fraction).
func Q11(e rel.Runner) (*rel.Result, *exec.Stats, error) {
	germany := nationKey("GERMANY")
	base := func() rel.Node {
		return rel.IndexJoin{
			Probe: rel.Scan{Table: "partsupp", Cols: []string{
				"ps_partkey", "ps_suppkey", "ps_supplycost", "ps_availqty"}},
			ProbeKey: "ps_suppkey",
			Build: rel.Filter{
				In:   rel.Scan{Table: "supplier", Cols: []string{"s_suppkey", "s_nationkey"}},
				Pred: rel.B(rel.Eq, rel.C("s_nationkey"), rel.I(germany)),
			},
			BuildKey: "s_suppkey",
			Semi:     true,
		}
	}
	value := rel.B(rel.Mul, rel.C("ps_supplycost"), rel.C("ps_availqty"))

	total, st1, err := e.Run(rel.Query{Root: rel.GroupAgg{
		In:   base(),
		Aggs: []rel.AggSpec{{Func: rel.Sum, E: value, As: "total"}},
	}})
	if err != nil {
		return nil, nil, err
	}
	threshold := total.Rows[0]["total"] * 0.0001

	res, st2, err := e.Run(rel.Query{
		Root: rel.GroupAgg{
			In:   base(),
			Keys: []string{"ps_partkey"},
			Aggs: []rel.AggSpec{{Func: rel.Sum, E: value, As: "value"}},
		},
		Having:  func(r rel.Row) bool { return r["value"] > threshold },
		OrderBy: func(a, b rel.Row) bool { return a["value"] > b["value"] },
	})
	return res, mergeStats(st1, st2), err
}

// Q12: shipping modes and order priority.
func Q12(e rel.Runner) (*rel.Result, *exec.Stats, error) {
	lo := Date("1994-01-01")
	hi := DateAdd(lo, 1, 0, 0)
	urgent := code(e, "orders", "o_orderpriority", "1-URGENT")
	high := code(e, "orders", "o_orderpriority", "2-HIGH")
	modes := []int64{
		code(e, "lineitem", "l_shipmode", "MAIL"),
		code(e, "lineitem", "l_shipmode", "SHIP"),
	}
	highPred := rel.B(rel.Or,
		rel.B(rel.Eq, rel.C("o_orderpriority"), rel.I(urgent)),
		rel.B(rel.Eq, rel.C("o_orderpriority"), rel.I(high)))
	q := rel.Query{
		Root: rel.GroupAgg{
			In: rel.Map{
				In: rel.IndexJoin{
					Probe: rel.Filter{
						In: rel.Scan{Table: "lineitem", Cols: []string{
							"l_orderkey", "l_shipmode", "l_shipdate",
							"l_commitdate", "l_receiptdate"}},
						Pred: rel.B(rel.And,
							rel.B(rel.And,
								rel.InList{E: rel.C("l_shipmode"), Vs: modes},
								rel.B(rel.Lt, rel.C("l_commitdate"), rel.C("l_receiptdate"))),
							rel.B(rel.And,
								rel.B(rel.Lt, rel.C("l_shipdate"), rel.C("l_commitdate")),
								rel.B(rel.And,
									rel.B(rel.Ge, rel.C("l_receiptdate"), rel.I(lo)),
									rel.B(rel.Lt, rel.C("l_receiptdate"), rel.I(hi))))),
					},
					ProbeKey: "l_orderkey",
					Build:    rel.Scan{Table: "orders", Cols: []string{"o_orderkey", "o_orderpriority"}},
					BuildKey: "o_orderkey",
					Cols:     []string{"o_orderpriority"},
				},
				Outs: []rel.NamedExpr{
					{Name: "high", E: highPred},
					{Name: "low", E: rel.Not{E: highPred}},
				},
			},
			Keys: []string{"l_shipmode"},
			Aggs: []rel.AggSpec{
				{Func: rel.Sum, E: rel.C("high"), As: "high_line_count"},
				{Func: rel.Sum, E: rel.C("low"), As: "low_line_count"},
			},
		},
		OrderBy: func(a, b rel.Row) bool { return a["l_shipmode"] < b["l_shipmode"] },
	}
	return e.Run(q)
}

// Q14: promotion effect.
func Q14(e rel.Runner) (*rel.Result, *exec.Stats, error) {
	lo := Date("1995-09-01")
	hi := DateAdd(lo, 0, 1, 0)
	promoLo, promoHi := prefixRange(e, "part", "p_type", "PROMO")
	q := rel.Query{Root: rel.GroupAgg{
		In: rel.Map{
			In: rel.IndexJoin{
				Probe: rel.Filter{
					In: rel.Scan{Table: "lineitem", Cols: []string{
						"l_partkey", "l_shipdate", "l_extendedprice", "l_discount"}},
					Pred: rel.B(rel.And,
						rel.B(rel.Ge, rel.C("l_shipdate"), rel.I(lo)),
						rel.B(rel.Lt, rel.C("l_shipdate"), rel.I(hi))),
				},
				ProbeKey: "l_partkey",
				Build:    rel.Scan{Table: "part", Cols: []string{"p_partkey", "p_type"}},
				BuildKey: "p_partkey",
				Cols:     []string{"p_type"},
			},
			Outs: []rel.NamedExpr{{Name: "promo_rev", E: rel.B(rel.Mul, revenue(),
				rel.Between{E: rel.C("p_type"), Lo: rel.I(promoLo), Hi: rel.I(promoHi)})}},
		},
		Aggs: []rel.AggSpec{
			{Func: rel.Sum, E: rel.C("promo_rev"), As: "promo"},
			{Func: rel.Sum, E: revenue(), As: "total"},
		},
	}}
	res, st, err := e.Run(q)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range res.Rows {
		if r["total"] != 0 {
			r["promo_revenue"] = 100 * r["promo"] / r["total"]
		}
	}
	res.Cols = append(res.Cols, "promo_revenue")
	return res, st, nil
}

// Q15: top supplier (revenue view, then the max).
func Q15(e rel.Runner) (*rel.Result, *exec.Stats, error) {
	lo := Date("1996-01-01")
	hi := DateAdd(lo, 0, 3, 0)
	res, st, err := e.Run(rel.Query{
		Root: rel.GroupAgg{
			In: rel.Filter{
				In: rel.Scan{Table: "lineitem", Cols: []string{
					"l_suppkey", "l_shipdate", "l_extendedprice", "l_discount"}},
				Pred: rel.B(rel.And,
					rel.B(rel.Ge, rel.C("l_shipdate"), rel.I(lo)),
					rel.B(rel.Lt, rel.C("l_shipdate"), rel.I(hi))),
			},
			Keys: []string{"l_suppkey"},
			Aggs: []rel.AggSpec{{Func: rel.Sum, E: revenue(), As: "total_revenue"}},
		},
	})
	if err != nil {
		return nil, nil, err
	}
	maxRev := 0.0
	for _, r := range res.Rows {
		if r["total_revenue"] > maxRev {
			maxRev = r["total_revenue"]
		}
	}
	kept := res.Rows[:0]
	for _, r := range res.Rows {
		if r["total_revenue"] >= maxRev-1e-9 {
			kept = append(kept, r)
		}
	}
	res.Rows = kept
	return res, st, nil
}

// Q19: discounted revenue (disjunction of brand/container/quantity terms).
func Q19(e rel.Runner) (*rel.Result, *exec.Stats, error) {
	contCodes := func(names ...string) []int64 {
		var out []int64
		for _, n := range names {
			out = append(out, code(e, "part", "p_container", n))
		}
		return out
	}
	air := []int64{
		code(e, "lineitem", "l_shipmode", "AIR"),
		code(e, "lineitem", "l_shipmode", "REG AIR"),
	}
	deliver := code(e, "lineitem", "l_shipinstruct", "DELIVER IN PERSON")
	term := func(brand string, conts []int64, qlo, qhi, slo, shi int64) rel.Expr {
		return rel.B(rel.And,
			rel.B(rel.And,
				rel.B(rel.Eq, rel.C("p_brand"), rel.I(code(e, "part", "p_brand", brand))),
				rel.InList{E: rel.C("p_container"), Vs: conts}),
			rel.B(rel.And,
				rel.Between{E: rel.C("l_quantity"), Lo: rel.I(qlo), Hi: rel.I(qhi)},
				rel.Between{E: rel.C("p_size"), Lo: rel.I(slo), Hi: rel.I(shi)}))
	}
	pred := rel.B(rel.And,
		rel.B(rel.And,
			rel.InList{E: rel.C("l_shipmode"), Vs: air},
			rel.B(rel.Eq, rel.C("l_shipinstruct"), rel.I(deliver))),
		rel.B(rel.Or,
			term("Brand#12", contCodes("SM CASE", "SM BOX", "SM PACK", "SM PKG"), 1, 11, 1, 5),
			rel.B(rel.Or,
				term("Brand#23", contCodes("MED BAG", "MED BOX", "MED PKG", "MED PACK"), 10, 20, 1, 10),
				term("Brand#34", contCodes("LG CASE", "LG BOX", "LG PACK", "LG PKG"), 20, 30, 1, 15))))
	q := rel.Query{Root: rel.GroupAgg{
		In: rel.Filter{
			In: rel.IndexJoin{
				Probe: rel.Scan{Table: "lineitem", Cols: []string{
					"l_partkey", "l_quantity", "l_extendedprice", "l_discount",
					"l_shipmode", "l_shipinstruct"}},
				ProbeKey: "l_partkey",
				Build: rel.Scan{Table: "part", Cols: []string{
					"p_partkey", "p_brand", "p_container", "p_size"}},
				BuildKey: "p_partkey",
				Cols:     []string{"p_brand", "p_container", "p_size"},
			},
			Pred: pred,
		},
		Aggs: []rel.AggSpec{{Func: rel.Sum, E: revenue(), As: "revenue"}},
	}}
	return e.Run(q)
}

// Q20: potential part promotion (three phases).
func Q20(e rel.Runner) (*rel.Result, *exec.Stats, error) {
	lo := Date("1994-01-01")
	hi := DateAdd(lo, 1, 0, 0)
	nSupp := e.Catalog().Table("supplier").N
	nPart := e.Catalog().Table("part").N

	// Phase 1: quantity shipped per (part, supplier) combo.
	qty, st1, err := e.Run(rel.Query{Root: rel.GroupAgg{
		In: rel.Map{
			In: rel.Filter{
				In: rel.Scan{Table: "lineitem", Cols: []string{
					"l_partkey", "l_suppkey", "l_quantity", "l_shipdate"}},
				Pred: rel.B(rel.And,
					rel.B(rel.Ge, rel.C("l_shipdate"), rel.I(lo)),
					rel.B(rel.Lt, rel.C("l_shipdate"), rel.I(hi))),
			},
			Outs: []rel.NamedExpr{{Name: "combo", E: comboExpr(nSupp)}},
		},
		Keys:    []string{"combo"},
		Domains: []rel.Domain{{Min: 0, Max: int64(nPart*SuppliersPerPart) - 1}},
		Aggs:    []rel.AggSpec{{Func: rel.Sum, E: rel.C("l_quantity"), As: "qty"}},
	}})
	if err != nil {
		return nil, nil, err
	}

	// Register the phase-1 result as a temporary table.
	combos := make([]int64, len(qty.Rows))
	qtys := make([]float64, len(qty.Rows))
	for i, r := range qty.Rows {
		combos[i] = int64(r["combo"])
		qtys[i] = r["qty"]
	}
	tmp := storage.NewTable("__q20_qty")
	tmp.AddInt("combo", combos)
	tmp.AddFloat("qty", qtys)
	e.Catalog().Add(tmp)

	// Phase 2: forest parts, availability above half the shipped volume.
	fLo, fHi := prefixRange(e, "part", "p_name", "forest")
	res, st2, err := e.Run(rel.Query{
		Root: rel.GroupAgg{
			In: rel.Filter{
				In: rel.IndexJoin{
					Probe: rel.IndexJoin{
						Probe: rel.Scan{Table: "partsupp", Cols: []string{
							"ps_partkey", "ps_suppkey", "ps_comboid", "ps_availqty"}},
						ProbeKey: "ps_partkey",
						Build: rel.Filter{
							In: rel.Scan{Table: "part", Cols: []string{"p_partkey", "p_name"}},
							Pred: rel.Between{E: rel.C("p_name"),
								Lo: rel.I(fLo), Hi: rel.I(fHi)},
						},
						BuildKey: "p_partkey",
						Semi:     true,
					},
					ProbeKey: "ps_comboid",
					Build:    rel.Scan{Table: "__q20_qty", Cols: []string{"combo", "qty"}},
					BuildKey: "combo",
					Cols:     []string{"qty"},
				},
				Pred: rel.B(rel.Gt, rel.C("ps_availqty"),
					rel.B(rel.Mul, rel.F(0.5), rel.C("qty"))),
			},
			Keys: []string{"ps_suppkey"},
			Aggs: []rel.AggSpec{{Func: rel.Count, As: "n"}},
		},
		OrderBy: func(a, b rel.Row) bool { return a["ps_suppkey"] < b["ps_suppkey"] },
	})
	return res, mergeStats(st1, st2), err
}

func mergeStats(a, b *exec.Stats) *exec.Stats {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := &exec.Stats{}
	out.Frags = append(out.Frags, a.Frags...)
	out.Frags = append(out.Frags, b.Frags...)
	return out
}
