package tpch

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"voodoo/internal/compile"
	"voodoo/internal/rel"
)

var update = flag.Bool("update", false, "rewrite the golden TPC-H answer files from the interpreter")

// goldenPath is the checked-in interpreter answer for query num at the
// test catalog's scale factor and seed.
func goldenPath(num int) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("q%02d.golden", num))
}

// formatResult renders a result table losslessly: shortest float64
// round-trip formatting, tab separated, one header line. The interpreter
// is deterministic, so this rendering is byte-stable across runs.
func formatResult(res *rel.Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Cols, "\t"))
	sb.WriteByte('\n')
	for _, row := range res.Rows {
		for j, c := range res.Cols {
			if j > 0 {
				sb.WriteByte('\t')
			}
			sb.WriteString(strconv.FormatFloat(row[c], 'g', -1, 64))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// parseGolden reads a golden file back into columns and rows.
func parseGolden(t *testing.T, path string) ([]string, [][]float64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden answer (run `go test ./internal/tpch -run Golden -update` to create): %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	cols := strings.Split(lines[0], "\t")
	var rows [][]float64
	for _, line := range lines[1:] {
		fields := strings.Split(line, "\t")
		if len(fields) != len(cols) {
			t.Fatalf("%s: malformed row %q", path, line)
		}
		row := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				t.Fatalf("%s: bad float %q: %v", path, f, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	return cols, rows
}

// TestGoldenAnswers pins the TPC-H answers: the interpreter must
// reproduce the checked-in golden files byte-for-byte, and every
// compiling configuration must match them to 1e-9 relative tolerance
// (float aggregation order differs between the fused fragments' parallel
// partials and the interpreter's sequential folds). Any unintended
// change to lowering, fusion or execution shows up as a golden diff.
func TestGoldenAnswers(t *testing.T) {
	for _, num := range QueryNumbers {
		num := num
		t.Run(queryName(num), func(t *testing.T) {
			qf, err := Query(num)
			if err != nil {
				t.Fatal(err)
			}
			ires, _, err := qf(&rel.Engine{Cat: testCat, Backend: rel.Interpreted})
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			got := formatResult(ires)
			path := goldenPath(num)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			cols, rows := parseGolden(t, path)
			data, _ := os.ReadFile(path)
			if got != string(data) {
				t.Errorf("interpreter answer drifted from golden %s:\ngot:\n%s\nwant:\n%s", path, got, data)
			}

			for name, e := range map[string]*rel.Engine{
				"compiled":        {Cat: testCat, Backend: rel.Compiled},
				"predicated":      {Cat: testCat, Backend: rel.Compiled, Opt: compile.Options{Predication: true}},
				"bulk":            {Cat: testCat, Backend: rel.BulkCompiled},
				"bulk-predicated": {Cat: testCat, Backend: rel.BulkCompiled, Opt: compile.Options{Predication: true}},
			} {
				res, _, err := qf(e)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				matchGolden(t, name, cols, rows, res)
			}
		})
	}
}

// matchGolden compares a backend result to the parsed golden rows with
// 1e-9 relative tolerance.
func matchGolden(t *testing.T, name string, cols []string, rows [][]float64, res *rel.Result) {
	t.Helper()
	if strings.Join(res.Cols, "\t") != strings.Join(cols, "\t") {
		t.Fatalf("%s: columns %v, golden has %v", name, res.Cols, cols)
	}
	if len(res.Rows) != len(rows) {
		t.Fatalf("%s: %d rows, golden has %d", name, len(res.Rows), len(rows))
	}
	for i, row := range rows {
		for j, c := range cols {
			want, got := row[j], res.Rows[i][c]
			tol := 1e-9 * math.Max(1, math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Errorf("%s row %d col %s: %g, golden %g (|Δ|=%g > %g)",
					name, i, c, got, want, math.Abs(got-want), tol)
			}
		}
	}
}
