// Package tpch provides a deterministic pure-Go TPC-H data generator and
// the fourteen query plans the paper evaluates (Figures 12 and 13).
//
// Deviations from dbgen, each preserving what the evaluation measures:
//
//   - keys are dense 1..N (dbgen's orderkey is sparse); the paper sizes its
//     open tables from min/max metadata either way, and selectivities are
//     unchanged;
//   - dates are stored as integer days since 1992-01-01, with derived year
//     columns (l_shipyear, o_orderyear) materialized at load time — the
//     evaluated queries never parse dates at runtime in any engine;
//   - text fields are drawn from small realistic vocabularies and
//     dictionary-encoded (as the paper's MonetDB storage does);
//   - partsupp rows get a dense composite id, ps_comboid =
//     4*(ps_partkey-1) + j, recoverable from (l_partkey, l_suppkey) with
//     integer arithmetic; Q9/Q20 join through it instead of a composite
//     hash key (the paper's metadata-join trick applied to a two-column
//     key).
package tpch

import (
	"fmt"
	"math/rand"
	"time"

	"voodoo/internal/storage"
)

// Epoch is day zero: 1992-01-01.
var epoch = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)

// Date converts "YYYY-MM-DD" into days since 1992-01-01. It panics on a
// malformed date: callers pass the TPC-H spec's literal date constants,
// so a parse failure is an invariant violation, not an input error.
func Date(s string) int64 {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		panic(fmt.Sprintf("tpch: bad date %q", s))
	}
	return int64(t.Sub(epoch).Hours() / 24)
}

// DateAdd shifts a day count by calendar years/months/days.
func DateAdd(d int64, years, months, days int) int64 {
	t := epoch.AddDate(0, 0, int(d)).AddDate(years, months, days)
	return int64(t.Sub(epoch).Hours() / 24)
}

// YearOf returns the calendar year of a day count.
func YearOf(d int64) int64 {
	return int64(epoch.AddDate(0, 0, int(d)).Year())
}

var (
	regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations = []struct {
		name   string
		region int64
	}{
		{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
		{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
		{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
		{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
		{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
		{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
		{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
	}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipmodes  = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	instructs  = []string{"COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"}
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	typeSyl1   = []string{"ECONOMY", "LARGE", "MEDIUM", "PROMO", "SMALL", "STANDARD"}
	typeSyl2   = []string{"ANODIZED", "BRUSHED", "BURNISHED", "PLATED", "POLISHED"}
	typeSyl3   = []string{"BRASS", "COPPER", "NICKEL", "STEEL", "TIN"}
	containers = []string{"JUMBO BOX", "JUMBO CASE", "JUMBO PACK", "JUMBO PKG",
		"LG BOX", "LG CASE", "LG PACK", "LG PKG",
		"MED BAG", "MED BOX", "MED PACK", "MED PKG",
		"SM BOX", "SM CASE", "SM PACK", "SM PKG"}
	colors = []string{"almond", "azure", "beige", "black", "blue", "brown",
		"chartreuse", "coral", "cyan", "forest", "green", "ivory",
		"lemon", "magenta", "navy", "olive"}
)

// SuppliersPerPart is the number of partsupp rows per part.
const SuppliersPerPart = 4

// Config scales the generator.
type Config struct {
	// SF is the TPC-H scale factor (1.0 ≈ 6M lineitems). The paper runs
	// SF 10; the reproduction defaults to 0.1 and the cost models scale
	// linearly.
	SF   float64
	Seed int64
}

// Sizes returns the base-table cardinalities for the configuration.
func (c Config) Sizes() (suppliers, customers, parts, orders int) {
	sf := c.SF
	if sf <= 0 {
		sf = 0.1
	}
	suppliers = max(int(10000*sf), 40)
	suppliers = (suppliers + 3) / 4 * 4 // ps_comboid recovery needs 4 | S
	customers = max(int(150000*sf), 100)
	parts = max(int(200000*sf), 80)
	orders = max(int(1500000*sf), 200)
	return
}

// Generate builds the eight-table catalog.
func Generate(cfg Config) *storage.Catalog {
	r := rand.New(rand.NewSource(cfg.Seed + 7))
	nSupp, nCust, nPart, nOrd := cfg.Sizes()

	cat := storage.NewCatalog()

	// region
	{
		t := storage.NewTable("region")
		keys := make([]int64, len(regions))
		for i := range keys {
			keys[i] = int64(i)
		}
		t.AddInt("r_regionkey", keys)
		t.AddString("r_name", regions)
		cat.Add(t)
	}

	// nation
	{
		t := storage.NewTable("nation")
		keys := make([]int64, len(nations))
		names := make([]string, len(nations))
		rk := make([]int64, len(nations))
		for i, n := range nations {
			keys[i] = int64(i)
			names[i] = n.name
			rk[i] = n.region
		}
		t.AddInt("n_nationkey", keys)
		t.AddString("n_name", names)
		t.AddInt("n_regionkey", rk)
		cat.Add(t)
	}

	// supplier
	{
		t := storage.NewTable("supplier")
		key := make([]int64, nSupp)
		nat := make([]int64, nSupp)
		bal := make([]float64, nSupp)
		for i := range key {
			key[i] = int64(i + 1)
			nat[i] = r.Int63n(int64(len(nations)))
			bal[i] = float64(r.Intn(2000000))/100 - 1000
		}
		t.AddInt("s_suppkey", key)
		t.AddInt("s_nationkey", nat)
		t.AddFloat("s_acctbal", bal)
		cat.Add(t)
	}

	// part
	partRetail := make([]float64, nPart)
	{
		t := storage.NewTable("part")
		key := make([]int64, nPart)
		name := make([]string, nPart)
		brand := make([]string, nPart)
		ptype := make([]string, nPart)
		size := make([]int64, nPart)
		cont := make([]string, nPart)
		for i := range key {
			key[i] = int64(i + 1)
			name[i] = colors[r.Intn(len(colors))] + " " + colors[r.Intn(len(colors))]
			brand[i] = fmt.Sprintf("Brand#%d%d", 1+r.Intn(5), 1+r.Intn(5))
			ptype[i] = typeSyl1[r.Intn(6)] + " " + typeSyl2[r.Intn(5)] + " " + typeSyl3[r.Intn(5)]
			size[i] = int64(1 + r.Intn(50))
			cont[i] = containers[r.Intn(len(containers))]
			partRetail[i] = 900 + float64((i+1)%2000)/10
		}
		t.AddInt("p_partkey", key)
		t.AddString("p_name", name)
		t.AddString("p_brand", brand)
		t.AddString("p_type", ptype)
		t.AddInt("p_size", size)
		t.AddString("p_container", cont)
		cat.Add(t)
	}

	// partsupp: SuppliersPerPart rows per part; supplier j of part p is
	// ((p + j*(S/4)) mod S) + 1, so j (and thus ps_comboid) is
	// recoverable from (partkey, suppkey) by integer arithmetic.
	{
		n := nPart * SuppliersPerPart
		t := storage.NewTable("partsupp")
		pk := make([]int64, n)
		sk := make([]int64, n)
		combo := make([]int64, n)
		cost := make([]float64, n)
		avail := make([]int64, n)
		for p := 0; p < nPart; p++ {
			for j := 0; j < SuppliersPerPart; j++ {
				i := p*SuppliersPerPart + j
				pk[i] = int64(p + 1)
				sk[i] = supplierFor(int64(p+1), j, nSupp)
				combo[i] = int64(p*SuppliersPerPart + j)
				cost[i] = float64(100+r.Intn(90000)) / 100
				avail[i] = int64(1 + r.Intn(9999))
			}
		}
		t.AddInt("ps_partkey", pk)
		t.AddInt("ps_suppkey", sk)
		t.AddInt("ps_comboid", combo)
		t.AddFloat("ps_supplycost", cost)
		t.AddInt("ps_availqty", avail)
		cat.Add(t)
	}

	// customer
	{
		t := storage.NewTable("customer")
		key := make([]int64, nCust)
		nat := make([]int64, nCust)
		bal := make([]float64, nCust)
		seg := make([]string, nCust)
		for i := range key {
			key[i] = int64(i + 1)
			nat[i] = r.Int63n(int64(len(nations)))
			bal[i] = float64(r.Intn(1100000))/100 - 1000
			seg[i] = segments[r.Intn(len(segments))]
		}
		t.AddInt("c_custkey", key)
		t.AddInt("c_nationkey", nat)
		t.AddFloat("c_acctbal", bal)
		t.AddString("c_mktsegment", seg)
		cat.Add(t)
	}

	// orders + lineitem
	endDate := Date("1998-08-02")
	ordT := storage.NewTable("orders")
	oKey := make([]int64, nOrd)
	oCust := make([]int64, nOrd)
	oDate := make([]int64, nOrd)
	oYear := make([]int64, nOrd)
	oPrio := make([]string, nOrd)

	var (
		lOrder, lPart, lSupp, lQty      []int64
		lShip, lCommit, lReceipt, lYear []int64
		lPrice, lDisc, lTax             []float64
		lFlag, lStatus, lMode, lInstr   []string
	)
	cutoff := Date("1995-06-17")
	for o := 0; o < nOrd; o++ {
		oKey[o] = int64(o + 1)
		oCust[o] = int64(1 + r.Intn(nCust))
		od := r.Int63n(endDate - 151)
		oDate[o] = od
		oYear[o] = YearOf(od)
		oPrio[o] = priorities[r.Intn(len(priorities))]
		lines := 1 + r.Intn(7)
		for ln := 0; ln < lines; ln++ {
			p := int64(1 + r.Intn(nPart))
			j := r.Intn(SuppliersPerPart)
			s := supplierFor(p, j, nSupp)
			qty := int64(1 + r.Intn(50))
			ship := od + int64(1+r.Intn(121))
			commit := od + int64(30+r.Intn(61))
			receipt := ship + int64(1+r.Intn(30))
			lOrder = append(lOrder, oKey[o])
			lPart = append(lPart, p)
			lSupp = append(lSupp, s)
			lQty = append(lQty, qty)
			lPrice = append(lPrice, float64(qty)*partRetail[p-1])
			lDisc = append(lDisc, float64(r.Intn(11))/100)
			lTax = append(lTax, float64(r.Intn(9))/100)
			lShip = append(lShip, ship)
			lCommit = append(lCommit, commit)
			lReceipt = append(lReceipt, receipt)
			lYear = append(lYear, YearOf(ship))
			if receipt <= cutoff {
				if r.Intn(2) == 0 {
					lFlag = append(lFlag, "R")
				} else {
					lFlag = append(lFlag, "A")
				}
			} else {
				lFlag = append(lFlag, "N")
			}
			if ship > cutoff {
				lStatus = append(lStatus, "O")
			} else {
				lStatus = append(lStatus, "F")
			}
			lMode = append(lMode, shipmodes[r.Intn(len(shipmodes))])
			lInstr = append(lInstr, instructs[r.Intn(len(instructs))])
		}
	}
	ordT.AddInt("o_orderkey", oKey)
	ordT.AddInt("o_custkey", oCust)
	ordT.AddInt("o_orderdate", oDate)
	ordT.AddInt("o_orderyear", oYear)
	ordT.AddString("o_orderpriority", oPrio)
	cat.Add(ordT)

	li := storage.NewTable("lineitem")
	li.AddInt("l_orderkey", lOrder)
	li.AddInt("l_partkey", lPart)
	li.AddInt("l_suppkey", lSupp)
	li.AddInt("l_quantity", lQty)
	li.AddFloat("l_extendedprice", lPrice)
	li.AddFloat("l_discount", lDisc)
	li.AddFloat("l_tax", lTax)
	li.AddString("l_returnflag", lFlag)
	li.AddString("l_linestatus", lStatus)
	li.AddInt("l_shipdate", lShip)
	li.AddInt("l_commitdate", lCommit)
	li.AddInt("l_receiptdate", lReceipt)
	li.AddInt("l_shipyear", lYear)
	li.AddString("l_shipmode", lMode)
	li.AddString("l_shipinstruct", lInstr)
	cat.Add(li)

	return cat
}

// supplierFor is the deterministic part→supplier mapping.
func supplierFor(partkey int64, j, nSupp int) int64 {
	s := int64(nSupp)
	return (partkey+int64(j)*(s/SuppliersPerPart))%s + 1
}

// ComboOf recovers the dense partsupp id from a (partkey, suppkey) pair as
// integer arithmetic: j = ((suppkey-1-partkey) mod S) / (S/4).
func ComboOf(partkey, suppkey int64, nSupp int) int64 {
	s := int64(nSupp)
	j := ((suppkey - 1 - partkey) % s)
	if j < 0 {
		j += s
	}
	j /= s / SuppliersPerPart
	return (partkey-1)*SuppliersPerPart + j
}
