// Package trace is the observability layer of the execution stack: a
// per-query Trace records, per plan step and per fragment, wall time, work
// items, worker utilization, and the bytes allocated and materialized at
// fragment seams — the quantities the paper's Figures 14–16 argue about
// (fusion, empty-slot suppression, virtual scatter).
//
// Collection is opt-in and near-zero cost when disabled: the executor's
// per-item counting stays behind its existing stats gate, and the only
// always-on instrumentation is one atomic add per fragment and per query
// (see Counters). Traces are per-query objects owned by their caller, so
// concurrent queries on one engine never share mutable trace state.
package trace

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"voodoo/internal/metrics"
)

// Step kinds. Fragment and bulk steps come from the compiling backend;
// stmt steps from the interpreter; bind/persist/output are plan plumbing.
const (
	KindFragment = "fragment"
	KindBulk     = "bulk"
	KindBind     = "bind"
	KindPersist  = "persist"
	KindOutput   = "output"
	KindStmt     = "stmt"
	// KindPruned marks a fragment elided at plan time by zone-map
	// statistics (a selection whose predicate provably never passes).
	KindPruned = "pruned"
)

// Step is the trace record of one plan step (one fragment, bulk step, or
// interpreted statement).
type Step struct {
	Index int    `json:"index"`
	Kind  string `json:"kind"`
	Name  string `json:"name"`

	// Stmts lists the SSA statement ids fused into this step — more than
	// one means the compiler fused operators into a single fragment.
	Stmts []int `json:"stmts,omitempty"`
	// Fused mirrors len(Stmts) > 1 for quick filtering.
	Fused bool `json:"fused,omitempty"`

	// Fusion decision flags (compiling backend only).
	Suppressed bool `json:"empty_slot_suppression,omitempty"`
	Virtual    bool `json:"virtual_scatter,omitempty"`
	Predicated bool `json:"predicated,omitempty"`

	// Specialized records which execution path ran a fragment step:
	// "fused" (single-closure fast path), "batch" (compiled batch
	// primitives), or "interp" (per-element interpreter fallback).
	Specialized string `json:"specialized,omitempty"`

	// Control-vector shape of a fragment: Extent parallel work items,
	// Intent sequential iterations each, over N guarded elements.
	Extent  int  `json:"extent,omitempty"`
	Intent  int  `json:"intent,omitempty"`
	N       int  `json:"n,omitempty"`
	Strided bool `json:"strided,omitempty"`

	WallNS  int64 `json:"wall_ns"`
	Workers int   `json:"workers,omitempty"`
	// Morsels is the number of scheduling morsels a parallel fragment was
	// split into; Imbalance is the busiest participant's morsel count over
	// an even share (1.0 = balanced).
	Morsels   int64   `json:"morsels,omitempty"`
	Imbalance float64 `json:"imbalance,omitempty"`
	// Items is the number of loop iterations (work items) executed.
	Items int64 `json:"items"`
	// MaterializedBytes counts the bytes this step wrote at a fragment
	// seam (stores into kernel buffers, bulk-step outputs, interpreter
	// statement outputs).
	MaterializedBytes int64 `json:"materialized_bytes"`
	// AllocBytes counts buffer bytes this step allocated at run time
	// (bulk-step outputs; fragment buffers are allocated up front and
	// appear in the trace's AllocBytes total).
	AllocBytes int64 `json:"alloc_bytes,omitempty"`

	// FoldRuns counts aggregation runs produced by fold steps;
	// ScatterItems counts elements moved by materialized scatters.
	// A virtual scatter moves nothing — that is the point.
	FoldRuns     int64 `json:"fold_runs,omitempty"`
	ScatterItems int64 `json:"scatter_items,omitempty"`

	IntOps       int64 `json:"int_ops,omitempty"`
	FloatOps     int64 `json:"float_ops,omitempty"`
	SeqBytes     int64 `json:"seq_bytes,omitempty"`
	RandAccesses int64 `json:"rand_accesses,omitempty"`
}

// Trace is the execution record of one query. It is owned by the caller of
// the Run*Traced entry point that produced it and is never shared.
type Trace struct {
	Query   string          `json:"query,omitempty"`
	Backend string          `json:"backend"`
	Options map[string]bool `json:"options,omitempty"`

	WallNS int64 `json:"wall_ns"`
	// AllocBytes is the query's total governed buffer allocation.
	AllocBytes int64  `json:"alloc_bytes"`
	Steps      []Step `json:"steps"`

	// Totals over Steps, computed by Finish.
	Fragments         int   `json:"fragments"`
	BulkSteps         int   `json:"bulk_steps"`
	Items             int64 `json:"items"`
	MaterializedBytes int64 `json:"materialized_bytes"`
	FoldRuns          int64 `json:"fold_runs"`
	ScatterItems      int64 `json:"scatter_items"`

	// OnStep, when set, receives each step synchronously as Add records
	// it — while the query is still running. This is the live-progress
	// feed of the diagnostics server's /queries endpoint. The observer
	// must be cheap and must not retain the Step's slices past the call.
	OnStep Observer `json:"-"`
}

// Observer receives completed steps of an in-flight query. The Run*Traced
// entry points pick it up from their context (WithObserver), so callers
// that only have a context — an HTTP request serving a query — can watch
// progress without new plumbing through the backends.
type Observer func(Step)

type observerKey struct{}

// WithObserver returns a context carrying o.
func WithObserver(ctx context.Context, o Observer) context.Context {
	return context.WithValue(ctx, observerKey{}, o)
}

// ObserverFrom extracts the step observer carried by ctx, or nil.
func ObserverFrom(ctx context.Context) Observer {
	o, _ := ctx.Value(observerKey{}).(Observer)
	return o
}

// Add appends a step, assigning its index, and streams it to the
// trace's observer when one is attached.
func (t *Trace) Add(s Step) {
	s.Index = len(t.Steps)
	t.Steps = append(t.Steps, s)
	if t.OnStep != nil {
		t.OnStep(s)
	}
}

// Finish totals the steps, records the query wall time, and folds the
// query into the process-wide cumulative counters.
func (t *Trace) Finish(wall time.Duration) {
	t.WallNS = wall.Nanoseconds()
	t.Fragments, t.BulkSteps = 0, 0
	t.Items, t.MaterializedBytes, t.FoldRuns, t.ScatterItems = 0, 0, 0, 0
	for i := range t.Steps {
		s := &t.Steps[i]
		switch s.Kind {
		case KindFragment:
			t.Fragments++
		case KindBulk:
			t.BulkSteps++
		}
		t.Items += s.Items
		t.MaterializedBytes += s.MaterializedBytes
		t.FoldRuns += s.FoldRuns
		t.ScatterItems += s.ScatterItems
	}
	countTrace(t)
}

// JSON renders the trace as indented JSON (the -trace artifact).
func (t *Trace) JSON() ([]byte, error) { return json.MarshalIndent(t, "", "  ") }

// String renders the EXPLAIN ANALYZE view: one line per step annotated
// with the measured numbers, then the query totals.
func (t *Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s backend", t.Backend)
	var opts []string
	for _, k := range [...]string{"predication", "forcebulk", "scatterparallel"} {
		if t.Options[k] {
			opts = append(opts, k)
		}
	}
	if len(opts) > 0 {
		fmt.Fprintf(&sb, " (%s)", strings.Join(opts, ", "))
	}
	if t.Query != "" {
		fmt.Fprintf(&sb, ": %s", t.Query)
	}
	sb.WriteString("\n")
	for i := range t.Steps {
		s := &t.Steps[i]
		fmt.Fprintf(&sb, "%3d. %-8s %-14s", s.Index, s.Kind, s.Name)
		if s.Extent > 0 {
			mode := "blocked"
			if s.Strided {
				mode = "strided"
			}
			fmt.Fprintf(&sb, " shape=%dx%d/%s", s.Extent, s.Intent, mode)
		}
		fmt.Fprintf(&sb, " wall=%s", time.Duration(s.WallNS))
		if s.Workers > 0 {
			fmt.Fprintf(&sb, " workers=%d", s.Workers)
		}
		if s.Morsels > 1 {
			fmt.Fprintf(&sb, " morsels=%d imb=%.2f", s.Morsels, s.Imbalance)
		}
		if s.Items > 0 {
			fmt.Fprintf(&sb, " items=%d", s.Items)
		}
		if s.MaterializedBytes > 0 {
			fmt.Fprintf(&sb, " mat=%dB", s.MaterializedBytes)
		}
		if s.FoldRuns > 0 {
			fmt.Fprintf(&sb, " folds=%d", s.FoldRuns)
		}
		if s.ScatterItems > 0 {
			fmt.Fprintf(&sb, " scatters=%d", s.ScatterItems)
		}
		var flags []string
		if s.Fused {
			flags = append(flags, fmt.Sprintf("fused:%d", len(s.Stmts)))
		}
		if s.Suppressed {
			flags = append(flags, "suppress")
		}
		if s.Virtual {
			flags = append(flags, "virtual")
		}
		if s.Predicated {
			flags = append(flags, "predicated")
		}
		if s.Specialized != "" && s.Specialized != "interp" {
			flags = append(flags, "spec:"+s.Specialized)
		}
		if len(flags) > 0 {
			fmt.Fprintf(&sb, " [%s]", strings.Join(flags, " "))
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "total: wall=%s alloc=%dB fragments=%d bulk=%d items=%d materialized=%dB folds=%d scatters=%d\n",
		time.Duration(t.WallNS), t.AllocBytes, t.Fragments, t.BulkSteps,
		t.Items, t.MaterializedBytes, t.FoldRuns, t.ScatterItems)
	return sb.String()
}

// Counters are the process-wide cumulative execution counters, exported
// via expvar under "voodoo". Queries and Fragments count every execution
// (one atomic add each — cheap enough to stay always on); the remaining
// counters accumulate only from traced queries, whose per-item numbers
// exist.
type Counters struct {
	Queries           atomic.Int64
	Fragments         atomic.Int64
	TracedQueries     atomic.Int64
	Items             atomic.Int64
	BytesAllocated    atomic.Int64
	BytesMaterialized atomic.Int64
	FoldRuns          atomic.Int64
	ScatterItems      atomic.Int64
}

var global Counters

// CountQuery bumps the always-on per-query counter. Backends call it once
// per execution, traced or not.
func CountQuery() { global.Queries.Add(1) }

// CountFragment bumps the always-on per-fragment counter; the executor
// calls it once per fragment run.
func CountFragment() { global.Fragments.Add(1) }

// countTrace folds a finished trace's totals into the cumulative counters.
func countTrace(t *Trace) {
	global.TracedQueries.Add(1)
	global.Items.Add(t.Items)
	global.BytesAllocated.Add(t.AllocBytes)
	global.BytesMaterialized.Add(t.MaterializedBytes)
	global.FoldRuns.Add(t.FoldRuns)
	global.ScatterItems.Add(t.ScatterItems)
}

// Snapshot returns the current cumulative counter values.
func Snapshot() map[string]int64 {
	return map[string]int64{
		"queries":            global.Queries.Load(),
		"fragments":          global.Fragments.Load(),
		"traced_queries":     global.TracedQueries.Load(),
		"items":              global.Items.Load(),
		"bytes_allocated":    global.BytesAllocated.Load(),
		"bytes_materialized": global.BytesMaterialized.Load(),
		"fold_runs":          global.FoldRuns.Load(),
		"scatter_items":      global.ScatterItems.Load(),
	}
}

// queryWall is the always-on end-to-end latency histogram: exactly one
// observation per program execution, made by the backends next to their
// CountQuery call. Together with the two always-on atomic counters this
// is the entire hot-path cost of process observability.
var queryWall = metrics.NewHistogram("voodoo_query_wall_seconds",
	"End-to-end wall time of each executed program (every backend, traced or not).",
	metrics.DefBuckets)

// ObserveQueryWall records one query's wall time in the always-on
// latency histogram. Backends call it once per execution.
func ObserveQueryWall(d time.Duration) { queryWall.Observe(d.Seconds()) }

func init() {
	// The atomics in global are the single source of truth. expvar keeps
	// its historical "voodoo" map as a read-only view, and the Prometheus
	// registry bridges the same atomics through scrape-time closures —
	// no counter is ever double-counted.
	expvar.Publish("voodoo", expvar.Func(func() any { return Snapshot() }))
	for _, b := range []struct {
		name, help string
		v          *atomic.Int64
	}{
		{"voodoo_queries_total", "Programs executed (every backend, traced or not).", &global.Queries},
		{"voodoo_fragments_total", "Kernel fragments executed.", &global.Fragments},
		{"voodoo_traced_queries_total", "Programs executed with tracing enabled.", &global.TracedQueries},
		{"voodoo_items_total", "Loop items executed by traced queries.", &global.Items},
		{"voodoo_bytes_allocated_total", "Buffer bytes allocated by traced queries.", &global.BytesAllocated},
		{"voodoo_bytes_materialized_total", "Bytes materialized at fragment seams by traced queries.", &global.BytesMaterialized},
		{"voodoo_fold_runs_total", "Aggregation runs produced by traced queries.", &global.FoldRuns},
		{"voodoo_scatter_items_total", "Elements moved by materialized scatters in traced queries.", &global.ScatterItems},
	} {
		v := b.v
		metrics.NewCounterFunc(b.name, b.help, func() float64 { return float64(v.Load()) })
	}
}
