package trace

import (
	"encoding/json"
	"expvar"
	"strings"
	"testing"
	"time"
)

func TestFinishTotalsSteps(t *testing.T) {
	tr := &Trace{Backend: "compiled"}
	tr.Add(Step{Kind: KindFragment, Name: "fold_1", Items: 100,
		MaterializedBytes: 800, FoldRuns: 4})
	tr.Add(Step{Kind: KindBulk, Name: "Scatter", Items: 50,
		MaterializedBytes: 400, ScatterItems: 50})
	tr.Add(Step{Kind: KindBind, Name: "t.a"})
	tr.AllocBytes = 1200
	tr.Finish(3 * time.Millisecond)

	if tr.Steps[0].Index != 0 || tr.Steps[1].Index != 1 || tr.Steps[2].Index != 2 {
		t.Fatalf("step indices not assigned in order: %+v", tr.Steps)
	}
	if tr.Fragments != 1 || tr.BulkSteps != 1 {
		t.Fatalf("fragments=%d bulk=%d, want 1/1", tr.Fragments, tr.BulkSteps)
	}
	if tr.Items != 150 || tr.MaterializedBytes != 1200 ||
		tr.FoldRuns != 4 || tr.ScatterItems != 50 {
		t.Fatalf("totals wrong: %+v", tr)
	}
	if tr.WallNS != (3 * time.Millisecond).Nanoseconds() {
		t.Fatalf("wall = %d", tr.WallNS)
	}
}

// The cumulative counters are load-bearing: Finish must fold every traced
// query into them, and the always-on CountQuery/CountFragment must tick.
func TestCumulativeCounters(t *testing.T) {
	before := Snapshot()

	CountQuery()
	CountFragment()
	CountFragment()

	tr := &Trace{Backend: "compiled", AllocBytes: 64}
	tr.Add(Step{Kind: KindFragment, Items: 10, MaterializedBytes: 80, FoldRuns: 2})
	tr.Add(Step{Kind: KindBulk, Items: 5, ScatterItems: 5})
	tr.Finish(time.Millisecond)

	after := Snapshot()
	wantDelta := map[string]int64{
		"queries":            1,
		"fragments":          2,
		"traced_queries":     1,
		"items":              15,
		"bytes_allocated":    64,
		"bytes_materialized": 80,
		"fold_runs":          2,
		"scatter_items":      5,
	}
	for k, d := range wantDelta {
		if got := after[k] - before[k]; got != d {
			t.Errorf("counter %s delta = %d, want %d", k, got, d)
		}
	}
}

func TestExpvarPublished(t *testing.T) {
	v := expvar.Get("voodoo")
	if v == nil {
		t.Fatal("expvar voodoo not published")
	}
	var m map[string]int64
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("expvar voodoo is not a counter map: %v", err)
	}
	for _, k := range []string{"queries", "fragments", "traced_queries",
		"items", "bytes_allocated", "bytes_materialized", "fold_runs", "scatter_items"} {
		if _, ok := m[k]; !ok {
			t.Errorf("expvar voodoo missing counter %q", k)
		}
	}
}

func TestStringRendering(t *testing.T) {
	tr := &Trace{
		Query: "Q6", Backend: "compiled",
		Options: map[string]bool{"predication": true},
	}
	tr.Add(Step{Kind: KindFragment, Name: "ffold_3", Stmts: []int{1, 2, 3},
		Fused: true, Suppressed: true, Predicated: true,
		Extent: 8, Intent: 128, Items: 1024, MaterializedBytes: 64, FoldRuns: 8})
	tr.Add(Step{Kind: KindFragment, Name: "scat_4", Virtual: true})
	tr.Finish(time.Millisecond)

	s := tr.String()
	for _, want := range []string{
		"compiled backend", "predication", "Q6",
		"ffold_3", "shape=8x128/blocked",
		"items=1024", "mat=64B", "folds=8",
		"fused:3", "suppress", "predicated", "virtual",
		"total:", "fragments=2",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := &Trace{Backend: "interpreted"}
	tr.Add(Step{Kind: KindStmt, Name: "FoldSum", Stmts: []int{7}, Items: 3})
	tr.Finish(time.Microsecond)

	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Backend != "interpreted" || len(back.Steps) != 1 ||
		back.Steps[0].Name != "FoldSum" || back.Items != 3 {
		t.Fatalf("round trip mangled trace: %+v", back)
	}
}
