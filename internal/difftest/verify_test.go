package difftest

import (
	"context"
	"testing"

	"voodoo/internal/compile"
	"voodoo/internal/interp"
	"voodoo/internal/verify"
)

// TestVerifierFrontLine makes the static verifier the first line of the
// differential harness:
//
//   - every generated program the interpreter accepts must verify with
//     ZERO diagnostics (warnings included) at the algebra level;
//   - algebra-level Error diagnostics are sound, so a flagged program must
//     be rejected by the interpreter (the enabled-mode cross-check inside
//     RunContext enforces the same thing from the other side);
//   - every plan that compiles — under all seven option combos — must
//     verify with ZERO diagnostics before execution.
func TestVerifierFrontLine(t *testing.T) {
	n := fullPrograms
	if testing.Short() {
		n = shortPrograms
	}
	ctx := context.Background()
	reported, staticCatches := 0, 0
	for seed := int64(1); seed <= int64(n); seed++ {
		if reported >= maxReported {
			t.Fatalf("stopping after %d verification failures", maxReported)
		}
		p := Generate(seed)
		diags := verify.Program(p.Prog, p.St)
		_, ierr := interp.RunContext(ctx, p.Prog, p.St)
		if ierr == nil {
			if len(diags) != 0 {
				t.Errorf("seed %d: interpreter-clean program has %d diagnostics:\n%v\nprogram:\n%s",
					seed, len(diags), diags, p.Prog)
				reported++
			}
		} else if verify.HasErrors(diags) {
			staticCatches++
		}
		for _, cfg := range configs {
			plan, cerr := compile.Compile(p.Prog, p.St, cfg.opt)
			if cerr != nil {
				// Compile already hard-fails on Error-level plan
				// diagnostics while verification is enabled, so a compile
				// error needs no second look here; the main differential
				// test checks rejection symmetry.
				continue
			}
			if ds := plan.Verify(); len(ds) != 0 {
				t.Errorf("seed %d %s: compiled plan has %d diagnostics:\n%v\nprogram:\n%s",
					seed, cfg.name, len(ds), ds, p.Prog)
				reported++
			}
		}
	}
	t.Logf("verifier statically flagged %d of the interpreter-rejected programs", staticCatches)
}
