// Package difftest cross-validates the two Voodoo execution backends
// against each other: a seeded generator produces random but
// deterministic Voodoo programs over the Table 2 vocabulary
// (data-parallel arithmetic, comparisons, Range, Zip/Project, Cross,
// Gather, Scatter, Partition, Materialize/Break and the controlled
// folds), and the differential test runs every program through the
// reference interpreter (§3.2, the semantic oracle) and the compiling
// backend in every option combination, requiring bit-identical results
// on every program root.
//
// The generator is constrained to the deterministic core of the algebra
// so that "bit-identical" is a sound requirement:
//
//   - FoldSum/FoldScan operate on integer values only: float summation
//     order differs between the compiled backend's parallel partials
//     and the interpreter's sequential runs. FoldMin/FoldMax are
//     order-independent and fold either kind.
//   - Divide/Modulo divisors are positive constants (no division by
//     zero).
//   - Modulo/BitShift/And/Or see integer operands only (the algebra
//     rejects floats there).
//   - Scatter position vectors are always permutations of the output
//     positions, so write conflicts — whose resolution order is
//     backend-specific under parallel scatter — cannot arise.
//   - Partition inputs are ε-free: Partition is only defined on dense
//     vectors (over an ε-padded fold output the interpreter reads every
//     padded slot while the compiler partitions the compact runs, so
//     there is no single right answer to agree on).
//   - Binary operators see same-kind operands (plus same-kind constant
//     broadcasts), keeping kind-promotion rules out of the comparison.
//
// Everything else is fair game, including ε (empty) slots in the loaded
// inputs, out-of-run positions from FoldSelect, and integer overflow
// (two's-complement wrapping is deterministic in both backends).
package difftest

import (
	"math/rand"

	"voodoo/internal/core"
	"voodoo/internal/interp"
	"voodoo/internal/vector"
)

// Program is one generated differential test case: a Voodoo program plus
// the storage its Loads resolve against. The same seed always yields the
// same program and data.
type Program struct {
	Seed int64
	Prog *core.Program
	St   interp.MemStorage
}

// entry is one single-attribute vector available to subsequent operators.
type entry struct {
	ref  core.Ref
	n    int
	kind vector.Kind
	// perm marks columns known to hold a permutation of [0,n) with every
	// slot valid — safe as Scatter positions and in-bounds Gather
	// positions.
	perm bool
	// full marks columns known to carry no ε slots (perm implies full).
	// Partition requires a full input; see the package comment.
	full bool
}

type gen struct {
	r    *rand.Rand
	b    *core.Builder
	st   interp.MemStorage
	pool []entry
}

// Generate builds the random program for seed. Generation is pure: no
// global state, so the differential test can replay any failing seed.
func Generate(seed int64) *Program {
	g := &gen{r: rand.New(rand.NewSource(seed)), b: core.NewBuilder(), st: interp.MemStorage{}}
	g.seedInputs()
	steps := 5 + g.r.Intn(11)
	for i := 0; i < steps; i++ {
		g.step()
	}
	return &Program{Seed: seed, Prog: g.b.Program(), St: g.st}
}

// seedInputs loads a few persistent columns: for each of one or two base
// lengths, an integer column, a float column and a shuffled permutation
// (scatter/gather fodder). A quarter of the non-permutation columns carry
// ε slots.
func (g *gen) seedInputs() {
	lengths := 1 + g.r.Intn(2)
	name := 0
	for l := 0; l < lengths; l++ {
		n := 1 + g.r.Intn(256)
		g.load(nameAt(&name), g.intCol(n), false)
		g.load(nameAt(&name), g.floatCol(n), false)
		g.load(nameAt(&name), g.permCol(n), true)
	}
}

func nameAt(i *int) string {
	s := "t" + string(rune('0'+*i))
	*i++
	return s
}

func (g *gen) intCol(n int) *vector.Column {
	if g.r.Intn(4) == 0 {
		c := vector.NewEmptyInt(n)
		for i := 0; i < n; i++ {
			if g.r.Intn(10) > 0 {
				c.SetInt(i, g.r.Int63n(201)-100)
			}
		}
		return c
	}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = g.r.Int63n(201) - 100
	}
	return vector.NewInt(vals)
}

func (g *gen) floatCol(n int) *vector.Column {
	if g.r.Intn(4) == 0 {
		c := vector.NewEmptyFloat(n)
		for i := 0; i < n; i++ {
			if g.r.Intn(10) > 0 {
				c.SetFloat(i, g.r.Float64()*200-100)
			}
		}
		return c
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = g.r.Float64()*200 - 100
	}
	return vector.NewFloat(vals)
}

func (g *gen) permCol(n int) *vector.Column {
	p := g.r.Perm(n)
	vals := make([]int64, n)
	for i, v := range p {
		vals[i] = int64(v)
	}
	return vector.NewInt(vals)
}

func (g *gen) load(name string, col *vector.Column, perm bool) {
	g.st[name] = vector.New(col.Len()).Set("val", col)
	ref := g.b.Load(name)
	g.pool = append(g.pool, entry{ref: ref, n: col.Len(), kind: col.Kind(),
		perm: perm, full: perm || col.AllValid()})
}

func (g *gen) push(e entry) {
	g.pool = append(g.pool, e)
}

func (g *gen) pick() entry { return g.pool[g.r.Intn(len(g.pool))] }

// pickWhere returns a random pool entry satisfying ok.
func (g *gen) pickWhere(ok func(entry) bool) (entry, bool) {
	for _, i := range g.r.Perm(len(g.pool)) {
		if ok(g.pool[i]) {
			return g.pool[i], true
		}
	}
	return entry{}, false
}

// constLike emits a same-kind constant for broadcasting against e.
func (g *gen) constLike(e entry) core.Ref {
	if e.kind == vector.Float {
		return g.b.ConstantF(g.r.Float64()*20 - 10)
	}
	return g.b.Constant(g.r.Int63n(21) - 10)
}

// step appends one randomly chosen operator (arithmetic is weighted up —
// it is the bulk of real programs too).
func (g *gen) step() {
	switch g.r.Intn(16) {
	case 0, 1, 2:
		g.genArith()
	case 3:
		g.genDivide()
	case 4:
		g.genIntOp()
	case 5, 6:
		g.genCompare()
	case 7:
		g.genRange()
	case 8:
		g.genGather()
	case 9:
		g.genScatter()
	case 10:
		g.genPartition()
	case 11, 12:
		g.genFold()
	case 13:
		g.genSelect()
	case 14:
		g.genZipProject()
	default:
		g.genMisc()
	}
}

func (g *gen) genArith() {
	a := g.pick()
	ops := []func(core.Ref, core.Ref) core.Ref{g.b.Add, g.b.Subtract, g.b.Multiply}
	op := ops[g.r.Intn(len(ops))]
	if b, ok := g.pickWhere(func(e entry) bool { return e.n == a.n && e.kind == a.kind }); ok && g.r.Intn(3) > 0 {
		g.push(entry{ref: op(a.ref, b.ref), n: a.n, kind: a.kind, full: a.full && b.full})
		return
	}
	g.push(entry{ref: op(a.ref, g.constLike(a)), n: a.n, kind: a.kind, full: a.full})
}

func (g *gen) genDivide() {
	a := g.pick()
	var c core.Ref
	if a.kind == vector.Float {
		c = g.b.ConstantF(0.25 + g.r.Float64()*8)
	} else {
		c = g.b.Constant(1 + g.r.Int63n(9))
	}
	g.push(entry{ref: g.b.Divide(a.ref, c), n: a.n, kind: a.kind, full: a.full})
}

func (g *gen) genIntOp() {
	a, ok := g.pickWhere(func(e entry) bool { return e.kind == vector.Int })
	if !ok {
		g.genArith()
		return
	}
	switch g.r.Intn(3) {
	case 0:
		g.push(entry{ref: g.b.Modulo(a.ref, g.b.Constant(1+g.r.Int63n(16))),
			n: a.n, kind: vector.Int, full: a.full})
	case 1:
		g.push(entry{ref: g.b.BitShift(a.ref, g.b.Constant(g.r.Int63n(10)-3)),
			n: a.n, kind: vector.Int, full: a.full})
	default:
		if b, ok := g.pickWhere(func(e entry) bool { return e.kind == vector.Int && e.n == a.n }); ok {
			op := g.b.And
			if g.r.Intn(2) == 0 {
				op = g.b.Or
			}
			g.push(entry{ref: op(a.ref, b.ref), n: a.n, kind: vector.Int, full: a.full && b.full})
			return
		}
		g.push(entry{ref: g.b.And(a.ref, g.b.Constant(g.r.Int63n(2))),
			n: a.n, kind: vector.Int, full: a.full})
	}
}

func (g *gen) genCompare() {
	a := g.pick()
	c := g.constLike(a)
	full := a.full
	if b, ok := g.pickWhere(func(e entry) bool { return e.n == a.n && e.kind == a.kind }); ok && g.r.Intn(2) == 0 {
		c = b.ref
		full = a.full && b.full
	}
	var out core.Ref
	switch g.r.Intn(4) {
	case 0:
		out = g.b.Greater(a.ref, c)
	case 1:
		out = g.b.Equals(a.ref, c)
	case 2:
		out = g.b.Less(a.ref, "", c, "")
	default:
		out = g.b.GreaterEqual(a.ref, "", c, "")
	}
	g.push(entry{ref: out, n: a.n, kind: vector.Int, full: full})
}

func (g *gen) genRange() {
	if g.r.Intn(2) == 0 {
		a := g.pick()
		g.push(entry{ref: g.b.Range(a.ref), n: a.n, kind: vector.Int, perm: true, full: true})
		return
	}
	n := 1 + g.r.Intn(64)
	g.push(entry{ref: g.b.RangeN(g.r.Int63n(9)-4, n, 1+g.r.Int63n(3)),
		n: n, kind: vector.Int, full: true})
}

func (g *gen) genGather() {
	src := g.pick()
	pos, ok := g.pickWhere(func(e entry) bool { return e.perm && e.n <= src.n })
	if !ok {
		pos = entry{ref: g.b.Range(src.ref), n: src.n, kind: vector.Int, perm: true, full: true}
	}
	g.push(entry{ref: g.b.Gather(src.ref, pos.ref, ""), n: pos.n, kind: src.kind,
		perm: src.perm && pos.n == src.n, full: src.full})
}

func (g *gen) genScatter() {
	pos, ok := g.pickWhere(func(e entry) bool { return e.perm })
	if !ok {
		base := g.pick()
		pos = entry{ref: g.b.Range(base.ref), n: base.n, kind: vector.Int, perm: true, full: true}
		g.push(pos)
	}
	src, ok := g.pickWhere(func(e entry) bool { return e.n == pos.n })
	if !ok {
		src = pos
	}
	g.push(entry{ref: g.b.Scatter(src.ref, pos.ref, "", pos.ref, ""),
		n: pos.n, kind: src.kind, perm: src.perm, full: src.full})
}

// genPartition partitions a dense integer column by a sorted pivot list
// (RangeN output is sorted by construction) and usually scatters a
// same-length column through the resulting stable position permutation.
func (g *gen) genPartition() {
	vals, ok := g.pickWhere(func(e entry) bool { return e.kind == vector.Int && e.full })
	if !ok {
		g.genArith()
		return
	}
	pivots := g.b.RangeN(g.r.Int63n(51)-25, 1+g.r.Intn(4), 1+g.r.Int63n(20))
	pos := g.b.Partition("val", vals.ref, "", pivots, "")
	g.push(entry{ref: pos, n: vals.n, kind: vector.Int, perm: true, full: true})
	if src, ok := g.pickWhere(func(e entry) bool { return e.n == vals.n }); ok && g.r.Intn(2) == 0 {
		g.push(entry{ref: g.b.Scatter(src.ref, pos, "", pos, ""),
			n: vals.n, kind: src.kind, perm: src.perm, full: src.full})
	}
}

// genFold emits a controlled fold: the control attribute is a
// non-decreasing run id built as floor(position / runLen), zipped next to
// the value attribute. An empty control keypath (one global run) is also
// exercised.
func (g *gen) genFold() {
	intOnly := g.r.Intn(3) < 2 // FoldSum/FoldScan/FoldCount need ints
	v := g.pick()
	if intOnly && v.kind != vector.Int {
		var ok bool
		if v, ok = g.pickWhere(func(e entry) bool { return e.kind == vector.Int }); !ok {
			intOnly = false
			v = g.pick()
		}
	}
	kind := v.kind
	if intOnly {
		kind = vector.Int
	}
	if g.r.Intn(4) == 0 { // global run
		var out core.Ref
		if intOnly {
			out = g.b.FoldSum(v.ref, "", "")
		} else if g.r.Intn(2) == 0 {
			out = g.b.FoldMin(v.ref, "", "")
		} else {
			out = g.b.FoldMax(v.ref, "", "")
		}
		g.push(entry{ref: out, n: v.n, kind: kind})
		return
	}
	runLen := 1 + g.r.Int63n(int64(v.n))
	ctl := g.b.Divide(g.b.Range(v.ref), g.b.Constant(runLen))
	z := g.b.Zip("k", ctl, "", "x", v.ref, "")
	var out core.Ref
	if intOnly {
		switch g.r.Intn(3) {
		case 0:
			out = g.b.FoldSum(z, "k", "x")
		case 1:
			out = g.b.FoldScan(z, "k", "x")
		default:
			out = g.b.FoldCount(z, "k")
		}
	} else if g.r.Intn(2) == 0 {
		out = g.b.FoldMin(z, "k", "x")
	} else {
		out = g.b.FoldMax(z, "k", "x")
	}
	g.push(entry{ref: out, n: v.n, kind: kind})
}

// genSelect is the paper's selection idiom: a predicate, a FoldSelect
// producing ε-padded positions, and a Gather resolving them — the shape
// both predication and empty-slot suppression rewrite in the compiler.
func (g *gen) genSelect() {
	v := g.pick()
	sel := g.b.Greater(v.ref, g.constLike(v))
	z := g.b.Zip("s", sel, "", "d", v.ref, "")
	pos := g.b.FoldSelect(z, "", "s")
	target, ok := g.pickWhere(func(e entry) bool { return e.n == v.n })
	if !ok {
		target = v
	}
	g.push(entry{ref: g.b.Gather(target.ref, pos, ""), n: v.n, kind: target.kind})
}

func (g *gen) genZipProject() {
	a := g.pick()
	b, ok := g.pickWhere(func(e entry) bool { return e.n == a.n })
	if !ok {
		b = a
	}
	z := g.b.Zip("a", a.ref, "", "b", b.ref, "")
	if g.r.Intn(3) == 0 {
		return // leave the multi-attribute vector as a program root
	}
	if g.r.Intn(2) == 0 {
		g.push(entry{ref: g.b.Project(core.DefaultOut, z, "a"),
			n: a.n, kind: a.kind, perm: a.perm, full: a.full})
	} else {
		g.push(entry{ref: g.b.Project(core.DefaultOut, z, "b"),
			n: b.n, kind: b.kind, perm: b.perm, full: b.full})
	}
}

// genMisc covers the structural rest: Materialize/Break (semantic
// identities, pipeline breakers for the compiler) and small Cross
// products.
func (g *gen) genMisc() {
	a := g.pick()
	switch g.r.Intn(3) {
	case 0:
		g.push(entry{ref: g.b.Materialize(a.ref, a.ref, ""),
			n: a.n, kind: a.kind, perm: a.perm, full: a.full})
	case 1:
		g.push(entry{ref: g.b.Break(a.ref, a.ref, ""),
			n: a.n, kind: a.kind, perm: a.perm, full: a.full})
	default:
		b, ok := g.pickWhere(func(e entry) bool { return e.n*a.n <= 2048 })
		if !ok {
			g.push(entry{ref: g.b.Materialize(a.ref, a.ref, ""),
				n: a.n, kind: a.kind, perm: a.perm, full: a.full})
			return
		}
		c := g.b.Cross("i", a.ref, "j", b.ref)
		g.push(entry{ref: g.b.Project(core.DefaultOut, c, "i"),
			n: a.n * b.n, kind: vector.Int, full: true})
	}
}
