package difftest

import (
	"os"
	"testing"

	"voodoo/internal/verify"
)

// TestMain switches static verification on for the whole differential
// suite: the verifier is difftest's front line — every generated program
// is verified before interpretation (a verifier Error on a cleanly
// executing program fails the run), and every compiled plan is verified
// before execution across all option combos.
func TestMain(m *testing.M) {
	verify.SetEnabled(true)
	os.Exit(m.Run())
}
