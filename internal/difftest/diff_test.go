package difftest

import (
	"context"
	"sync"
	"testing"

	"voodoo/internal/compile"
	"voodoo/internal/core"
	"voodoo/internal/exec"
	"voodoo/internal/interp"
	"voodoo/internal/vector"
)

// diffPool backs the pooled combo: one pool shared by every pooled run
// (and, in the concurrency test, by every goroutine), exactly as a server
// process shares one pool across requests.
var diffPool = vector.NewPool(0)

// configs is every option combination of the compiling backend the
// differential test checks against the interpreter. ScatterParallel
// stays off: parallel scatter resolves write conflicts in a
// backend-specific order, so it is only enabled by frontends that prove
// position uniqueness. The pooled combo runs the default options with
// recycled kernel buffers — results must stay bit-identical to the heap
// combos, or buffer reuse is leaking state between queries. The
// morsel-sweep combo runs with 4 workers across pathological morsel
// sizes — results must stay bit-identical at every scheduling
// granularity, or morsel claim order is leaking into results. The
// specialize-sweep combo crosses specialization modes {off, batch-only,
// full} with pathological morsel sizes — the interpreter is the
// specialization layer's oracle, so results must stay bit-identical on
// every (path, granularity) pair, or a batch primitive or fused fast
// path diverged from per-element semantics.
var configs = []struct {
	name    string
	opt     compile.Options
	pooled  bool
	morsels []int           // when set, the plan runs once per morsel size
	specs   []exec.SpecMode // when set, crossed with morsels (default: Auto)
}{
	{name: "compiled", opt: compile.Options{}},
	{name: "predicated", opt: compile.Options{Predication: true}},
	{name: "bulk", opt: compile.Options{ForceBulk: true}},
	{name: "bulk-predicated", opt: compile.Options{ForceBulk: true, Predication: true}},
	{name: "pooled", opt: compile.Options{}, pooled: true},
	{name: "morsel-sweep", opt: compile.Options{Workers: 4}, morsels: []int{1, 7, 1024, 0}},
	{name: "specialize-sweep", opt: compile.Options{Workers: 4}, morsels: []int{1, 7, 0},
		specs: []exec.SpecMode{exec.SpecializeOff, exec.SpecializeBatchOnly, exec.SpecializeAuto}},
}

// runPlan executes a compiled plan under the config's memory regime and
// morsel size; the returned release func recycles pooled buffers and must
// be called after the result has been compared (never before).
func runPlan(ctx context.Context, plan *compile.Plan, pooled bool, morsel int, spec exec.SpecMode) (*compile.Result, func(), error) {
	ro := compile.RunOpts{MorselSize: morsel, Specialize: spec}
	if pooled {
		ro.Pool = diffPool
	}
	res, err := plan.RunWith(ctx, ro)
	if err != nil {
		return nil, func() {}, err
	}
	if pooled {
		return res, res.Release, nil
	}
	return res, func() {}, nil
}

const (
	fullPrograms  = 500
	shortPrograms = 100
	maxReported   = 5 // stop after this many divergences; the rest is noise
)

// TestInterpVsCompiled is the differential harness: every generated
// program must produce bit-identical root values on the interpreter and
// on the compiling backend under all four option combinations. When the
// interpreter rejects a program, every compiled configuration must
// reject it too (at compile or run time), and such programs may not
// exceed 5% of the corpus.
func TestInterpVsCompiled(t *testing.T) {
	n := fullPrograms
	if testing.Short() {
		n = shortPrograms
	}
	ctx := context.Background()
	reported, interpErrs := 0, 0
	for seed := int64(1); seed <= int64(n); seed++ {
		p := Generate(seed)
		ires, ierr := interp.RunContext(ctx, p.Prog, p.St)
		if ierr != nil {
			interpErrs++
		}
		roots := p.Prog.Roots()
		if len(roots) == 0 {
			t.Fatalf("seed %d: generated program has no roots:\n%s", seed, p.Prog)
		}
		for _, cfg := range configs {
			if reported >= maxReported {
				t.Fatalf("stopping after %d divergences", maxReported)
			}
			plan, cerr := compile.Compile(p.Prog, p.St, cfg.opt)
			morsels := cfg.morsels
			if len(morsels) == 0 {
				morsels = []int{0}
			}
			specs := cfg.specs
			if len(specs) == 0 {
				specs = []exec.SpecMode{exec.SpecializeAuto}
			}
			if ierr != nil {
				if cerr != nil {
					continue
				}
				if _, release, rerr := runPlan(ctx, plan, cfg.pooled, morsels[0], specs[0]); rerr == nil {
					release()
					t.Errorf("seed %d %s: interpreter rejects the program (%v) but the compiled plan runs:\n%s",
						seed, cfg.name, ierr, p.Prog)
					reported++
				}
				continue
			}
			if cerr != nil {
				t.Errorf("seed %d %s: compile failed: %v\nprogram:\n%s", seed, cfg.name, cerr, p.Prog)
				reported++
				continue
			}
			for _, morsel := range morsels {
				for _, spec := range specs {
					cres, release, rerr := runPlan(ctx, plan, cfg.pooled, morsel, spec)
					if rerr != nil {
						t.Errorf("seed %d %s (morsel=%d spec=%d): run failed: %v\nprogram:\n%s", seed, cfg.name, morsel, spec, rerr, p.Prog)
						reported++
						continue
					}
					for _, ref := range roots {
						iv, cv := ires.Value(ref), cres.Values[ref]
						if cv == nil {
							t.Errorf("seed %d %s (morsel=%d spec=%d): root v%d missing from compiled result\nprogram:\n%s",
								seed, cfg.name, morsel, spec, ref, p.Prog)
							reported++
							break
						}
						if !iv.Equal(cv) {
							t.Errorf("seed %d %s (morsel=%d spec=%d): root v%d diverges\nprogram:\n%s\ninterp:\n%s\ncompiled:\n%s",
								seed, cfg.name, morsel, spec, ref, p.Prog, iv, cv)
							reported++
							break
						}
					}
					release()
				}
			}
		}
	}
	if interpErrs*20 > n {
		t.Errorf("interpreter rejected %d/%d generated programs (budget is 5%%) — the generator has drifted into invalid territory", interpErrs, n)
	}
}

// TestPooledConcurrentIsolation runs under -race in CI: concurrent
// queries drawing from one shared pool must never observe each other's
// released buffers. Each goroutine runs its own generated programs,
// sharing one compiled plan per seed is deliberately avoided — the point
// here is buffer isolation, and the per-goroutine interpreter result is
// the oracle. Poison-on-release (-tags voodoo_poison) turns any
// release-too-early bug into a loud value divergence.
func TestPooledConcurrentIsolation(t *testing.T) {
	const workers = 4
	n := 40
	if testing.Short() {
		n = 10
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seed := int64(1 + w*n); seed <= int64((w+1)*n); seed++ {
				p := Generate(seed)
				ires, ierr := interp.RunContext(ctx, p.Prog, p.St)
				if ierr != nil {
					continue // rejection parity is TestInterpVsCompiled's job
				}
				plan, cerr := compile.Compile(p.Prog, p.St, compile.Options{})
				if cerr != nil {
					continue
				}
				cres, err := plan.RunWith(ctx, compile.RunOpts{Pool: diffPool})
				if err != nil {
					errs <- "seed " + p.Prog.String() + ": pooled run failed: " + err.Error()
					return
				}
				for _, ref := range p.Prog.Roots() {
					iv, cv := ires.Value(ref), cres.Values[ref]
					if cv == nil || !iv.Equal(cv) {
						errs <- "pooled concurrent divergence at seed program:\n" + p.Prog.String()
						cres.Release()
						return
					}
				}
				cres.Release()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestGenerateDeterministic pins the replay contract: the same seed must
// always yield the same program and the same loaded data, or failing
// seeds could not be investigated.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 499} {
		a, b := Generate(seed), Generate(seed)
		if a.Prog.String() != b.Prog.String() {
			t.Fatalf("seed %d: program listing differs between runs:\n%s\nvs\n%s", seed, a.Prog, b.Prog)
		}
		if len(a.St) != len(b.St) {
			t.Fatalf("seed %d: storage differs in size", seed)
		}
		for name, av := range a.St {
			bv, ok := b.St[name]
			if !ok || !av.Equal(bv) {
				t.Fatalf("seed %d: loaded vector %q differs between runs", seed, name)
			}
		}
	}
}

// TestGeneratorCoversAlgebra keeps the generator honest: across the
// corpus, every operator family of Table 2 the harness is meant to
// exercise must actually appear.
func TestGeneratorCoversAlgebra(t *testing.T) {
	seen := map[core.Op]bool{}
	n := fullPrograms
	if testing.Short() {
		n = shortPrograms
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		for _, s := range Generate(seed).Prog.Stmts {
			seen[s.Op] = true
		}
	}
	want := []core.Op{
		core.OpLoad, core.OpConstant, core.OpRange, core.OpCross,
		core.OpAdd, core.OpSubtract, core.OpMultiply, core.OpDivide,
		core.OpModulo, core.OpBitShift, core.OpLogicalAnd, core.OpLogicalOr,
		core.OpGreater, core.OpEquals,
		core.OpZip, core.OpProject, core.OpUpsert,
		core.OpGather, core.OpScatter, core.OpMaterialize, core.OpBreak,
		core.OpPartition,
		core.OpFoldSelect, core.OpFoldSum, core.OpFoldMin, core.OpFoldMax, core.OpFoldScan,
	}
	for _, op := range want {
		if !seen[op] {
			t.Errorf("no generated program uses %v", op)
		}
	}
}
