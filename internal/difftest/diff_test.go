package difftest

import (
	"context"
	"testing"

	"voodoo/internal/compile"
	"voodoo/internal/core"
	"voodoo/internal/interp"
)

// configs is every option combination of the compiling backend the
// differential test checks against the interpreter. ScatterParallel
// stays off: parallel scatter resolves write conflicts in a
// backend-specific order, so it is only enabled by frontends that prove
// position uniqueness.
var configs = []struct {
	name string
	opt  compile.Options
}{
	{"compiled", compile.Options{}},
	{"predicated", compile.Options{Predication: true}},
	{"bulk", compile.Options{ForceBulk: true}},
	{"bulk-predicated", compile.Options{ForceBulk: true, Predication: true}},
}

const (
	fullPrograms  = 500
	shortPrograms = 100
	maxReported   = 5 // stop after this many divergences; the rest is noise
)

// TestInterpVsCompiled is the differential harness: every generated
// program must produce bit-identical root values on the interpreter and
// on the compiling backend under all four option combinations. When the
// interpreter rejects a program, every compiled configuration must
// reject it too (at compile or run time), and such programs may not
// exceed 5% of the corpus.
func TestInterpVsCompiled(t *testing.T) {
	n := fullPrograms
	if testing.Short() {
		n = shortPrograms
	}
	ctx := context.Background()
	reported, interpErrs := 0, 0
	for seed := int64(1); seed <= int64(n); seed++ {
		p := Generate(seed)
		ires, ierr := interp.RunContext(ctx, p.Prog, p.St)
		if ierr != nil {
			interpErrs++
		}
		roots := p.Prog.Roots()
		if len(roots) == 0 {
			t.Fatalf("seed %d: generated program has no roots:\n%s", seed, p.Prog)
		}
		for _, cfg := range configs {
			if reported >= maxReported {
				t.Fatalf("stopping after %d divergences", maxReported)
			}
			plan, cerr := compile.Compile(p.Prog, p.St, cfg.opt)
			if ierr != nil {
				if cerr != nil {
					continue
				}
				if _, rerr := plan.RunContext(ctx); rerr == nil {
					t.Errorf("seed %d %s: interpreter rejects the program (%v) but the compiled plan runs:\n%s",
						seed, cfg.name, ierr, p.Prog)
					reported++
				}
				continue
			}
			if cerr != nil {
				t.Errorf("seed %d %s: compile failed: %v\nprogram:\n%s", seed, cfg.name, cerr, p.Prog)
				reported++
				continue
			}
			cres, rerr := plan.RunContext(ctx)
			if rerr != nil {
				t.Errorf("seed %d %s: run failed: %v\nprogram:\n%s", seed, cfg.name, rerr, p.Prog)
				reported++
				continue
			}
			for _, ref := range roots {
				iv, cv := ires.Value(ref), cres.Values[ref]
				if cv == nil {
					t.Errorf("seed %d %s: root v%d missing from compiled result\nprogram:\n%s",
						seed, cfg.name, ref, p.Prog)
					reported++
					break
				}
				if !iv.Equal(cv) {
					t.Errorf("seed %d %s: root v%d diverges\nprogram:\n%s\ninterp:\n%s\ncompiled:\n%s",
						seed, cfg.name, ref, p.Prog, iv, cv)
					reported++
					break
				}
			}
		}
	}
	if interpErrs*20 > n {
		t.Errorf("interpreter rejected %d/%d generated programs (budget is 5%%) — the generator has drifted into invalid territory", interpErrs, n)
	}
}

// TestGenerateDeterministic pins the replay contract: the same seed must
// always yield the same program and the same loaded data, or failing
// seeds could not be investigated.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 499} {
		a, b := Generate(seed), Generate(seed)
		if a.Prog.String() != b.Prog.String() {
			t.Fatalf("seed %d: program listing differs between runs:\n%s\nvs\n%s", seed, a.Prog, b.Prog)
		}
		if len(a.St) != len(b.St) {
			t.Fatalf("seed %d: storage differs in size", seed)
		}
		for name, av := range a.St {
			bv, ok := b.St[name]
			if !ok || !av.Equal(bv) {
				t.Fatalf("seed %d: loaded vector %q differs between runs", seed, name)
			}
		}
	}
}

// TestGeneratorCoversAlgebra keeps the generator honest: across the
// corpus, every operator family of Table 2 the harness is meant to
// exercise must actually appear.
func TestGeneratorCoversAlgebra(t *testing.T) {
	seen := map[core.Op]bool{}
	n := fullPrograms
	if testing.Short() {
		n = shortPrograms
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		for _, s := range Generate(seed).Prog.Stmts {
			seen[s.Op] = true
		}
	}
	want := []core.Op{
		core.OpLoad, core.OpConstant, core.OpRange, core.OpCross,
		core.OpAdd, core.OpSubtract, core.OpMultiply, core.OpDivide,
		core.OpModulo, core.OpBitShift, core.OpLogicalAnd, core.OpLogicalOr,
		core.OpGreater, core.OpEquals,
		core.OpZip, core.OpProject, core.OpUpsert,
		core.OpGather, core.OpScatter, core.OpMaterialize, core.OpBreak,
		core.OpPartition,
		core.OpFoldSelect, core.OpFoldSum, core.OpFoldMin, core.OpFoldMax, core.OpFoldScan,
	}
	for _, op := range want {
		if !seen[op] {
			t.Errorf("no generated program uses %v", op)
		}
	}
}
