package metrics

import (
	rm "runtime/metrics"
)

// runtimeMetrics is the curated slice of runtime/metrics the sampler
// exposes — the handful an operator of a query daemon actually watches:
// goroutine count, heap pressure, GC activity, scheduler contention.
// Each is read individually at scrape time (a runtime/metrics read is a
// few hundred nanoseconds; nothing is sampled between scrapes).
var runtimeMetrics = []struct {
	src  string // runtime/metrics key
	name string // exposed metric name
	help string
}{
	{"/sched/goroutines:goroutines", "go_goroutines", "Number of live goroutines."},
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes", "Bytes of memory occupied by live heap objects plus not-yet-reclaimed dead ones."},
	{"/memory/classes/total:bytes", "go_memory_total_bytes", "All memory mapped into the process by the Go runtime."},
	{"/gc/heap/goal:bytes", "go_gc_heap_goal_bytes", "Heap size target of the end of the current GC cycle."},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total", "Completed GC cycles."},
	{"/gc/heap/allocs:bytes", "go_heap_allocs_bytes_total", "Cumulative bytes allocated on the heap."},
	{"/cpu/classes/total:cpu-seconds", "go_cpu_seconds_total", "Total available CPU time, as estimated by the Go scheduler."},
	{"/sync/mutex/wait/total:seconds", "go_mutex_wait_seconds_total", "Cumulative time goroutines have spent blocked on mutexes."},
}

// RegisterRuntime registers scrape-time collectors over runtime/metrics
// for the curated metric set above. Keys the running toolchain does not
// provide are skipped, so the set may shrink on older runtimes but never
// errors. Cumulative runtime metrics register as counters, instantaneous
// ones as gauges.
func (r *Registry) RegisterRuntime() {
	descs := map[string]rm.Description{}
	for _, d := range rm.All() {
		descs[d.Name] = d
	}
	for _, m := range runtimeMetrics {
		d, ok := descs[m.src]
		if !ok || (d.Kind != rm.KindUint64 && d.Kind != rm.KindFloat64) {
			continue
		}
		src := m.src
		fn := func() float64 { return readRuntime(src) }
		if d.Cumulative {
			r.CounterFunc(m.name, m.help, fn)
		} else {
			r.GaugeFunc(m.name, m.help, fn)
		}
	}
}

// RuntimeSample reads one runtime/metrics value as a float (0 when the
// key is unknown to the running toolchain). The serve layer's
// memory-pressure shedder uses it for the live-heap watermark.
func RuntimeSample(name string) float64 { return readRuntime(name) }

// readRuntime samples one runtime/metrics value as a float.
func readRuntime(name string) float64 {
	s := [1]rm.Sample{{Name: name}}
	rm.Read(s[:])
	switch s[0].Value.Kind() {
	case rm.KindUint64:
		return float64(s[0].Value.Uint64())
	case rm.KindFloat64:
		return s[0].Value.Float64()
	}
	return 0
}
