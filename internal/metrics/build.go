package metrics

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Build identity: every scrape and health probe should say which binary
// answered it. voodoo_build_info follows the Prometheus convention of a
// constant-1 gauge whose labels carry the identity, so dashboards can
// join any series against the running version; the start-time gauge
// gives uptime without the scraper having to remember when the process
// appeared.

// BuildInfo is the process's build identity, as read from the binary's
// embedded module info.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for tree builds).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit sha, "" when built outside a checkout.
	Revision string `json:"revision,omitempty"`
	// Dirty reports uncommitted changes in the build's working tree.
	Dirty bool `json:"dirty,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo

	// processStart anchors voodoo_process_start_time_seconds. Package
	// initialization happens once at startup, close enough to exec time
	// for uptime math.
	processStart = time.Now()
)

// Build returns the process's build identity. The first call reads the
// binary's embedded build info; later calls return the cached value.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			buildInfo.GoVersion = bi.GoVersion
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.modified":
				buildInfo.Dirty = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// RegisterBuildInfo registers the build-identity gauge and the process
// start-time gauge on r. Idempotent, like all registration.
func (r *Registry) RegisterBuildInfo() {
	b := Build()
	rev := b.Revision
	if rev == "" {
		rev = "unknown"
	}
	r.GaugeVec("voodoo_build_info",
		"Build identity of the running binary; the value is always 1.",
		"version", "go_version", "revision").
		With(b.Version, b.GoVersion, rev).Set(1)
	r.GaugeFunc("voodoo_process_start_time_seconds",
		"Unix time the process started, in seconds.",
		func() float64 { return float64(processStart.UnixNano()) / 1e9 })
}

func init() { Default.RegisterBuildInfo() }
