package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden locks in the exact exposition format: family
// ordering, HELP/TYPE lines, label rendering, histogram bucket lines.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("zz_last_total", "Sorted last despite registration order.")
	c.Add(3)

	v := r.CounterVec("app_errors_total", "Errors by kind.", "kind")
	v.With("bytes").Add(2)
	v.With("deadline") // registered but never incremented: renders as 0
	v.With("extent").Inc()

	g := r.Gauge("app_temperature", "A settable value.")
	g.Set(36.6)

	r.GaugeFunc("app_active", "Scrape-time value.", func() float64 { return 7 })

	h := r.Histogram("app_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // le=0.01
	h.Observe(0.01)  // boundary: inclusive, le=0.01
	h.Observe(0.5)   // le=1
	h.Observe(3)     // +Inf

	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `# HELP app_active Scrape-time value.
# TYPE app_active gauge
app_active 7
# HELP app_errors_total Errors by kind.
# TYPE app_errors_total counter
app_errors_total{kind="bytes"} 2
app_errors_total{kind="deadline"} 0
app_errors_total{kind="extent"} 1
# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.01"} 2
app_latency_seconds_bucket{le="0.1"} 2
app_latency_seconds_bucket{le="1"} 3
app_latency_seconds_bucket{le="+Inf"} 4
app_latency_seconds_sum 3.515
app_latency_seconds_count 4
# HELP app_temperature A settable value.
# TYPE app_temperature gauge
app_temperature 36.6
# HELP zz_last_total Sorted last despite registration order.
# TYPE zz_last_total counter
zz_last_total 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramBuckets pins the bucket-boundary math: le is inclusive,
// observations beyond the last bound land in +Inf, cumulative counts and
// sum/count are exact.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "x", []float64{1, 2, 4})

	obs := []float64{0, 1, 1.0000001, 2, 2.5, 4, 4.0001, 100}
	for _, v := range obs {
		h.Observe(v)
	}
	// raw (non-cumulative) expectations per bucket: le=1: {0,1}, le=2:
	// {1.0000001,2}, le=4: {2.5,4}, +Inf: {4.0001,100}
	wantRaw := []int64{2, 2, 2, 2}
	for i, w := range wantRaw {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d: got %d observations, want %d", i, got, w)
		}
	}
	if h.Count() != int64(len(obs)) {
		t.Errorf("Count() = %d, want %d", h.Count(), len(obs))
	}
	var sum float64
	for _, v := range obs {
		sum += v
	}
	if math.Abs(h.Sum()-sum) > 1e-9 {
		t.Errorf("Sum() = %v, want %v", h.Sum(), sum)
	}

	// Default buckets are used when no bounds are given and must ascend.
	d := r.Histogram("d", "x", nil)
	if len(d.bounds) != len(DefBuckets) {
		t.Fatalf("default buckets not applied")
	}
}

// TestIdempotentRegistration verifies same-name registration returns the
// same collector and conflicting types panic.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "x")
	b := r.Counter("c_total", "x")
	if a != b {
		t.Errorf("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Errorf("counters not shared")
	}

	v1 := r.CounterVec("v_total", "x", "k")
	v2 := r.CounterVec("v_total", "x", "k")
	v1.With("a").Add(5)
	if v2.With("a").Value() != 5 {
		t.Errorf("vec children not shared")
	}

	defer func() {
		if recover() == nil {
			t.Errorf("type conflict did not panic")
		}
	}()
	r.Gauge("c_total", "x")
}

// TestFuncReplacement: func-backed collectors re-bind on re-registration
// (a restarted server replaces its closure instead of panicking).
func TestFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("g", "x", func() float64 { return 1 })
	r.GaugeFunc("g", "x", func() float64 { return 2 })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "g 2\n") {
		t.Errorf("closure not replaced:\n%s", sb.String())
	}
}

// TestLabelEscaping: quotes, backslashes and newlines in label values
// must not corrupt the exposition format.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("e_total", "x", "q").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `e_total{q="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaping wrong:\n%s\nwant line: %s", sb.String(), want)
	}

	// Each special character alone, including escape-order traps
	// (backslash must escape first or it re-escapes the others' output).
	for _, tc := range []struct{ in, want string }{
		{`\`, `\\`},
		{`"`, `\"`},
		{"\n", `\n`},
		{`\n`, `\\n`},  // literal backslash-n, not a newline
		{`\"`, `\\\"`}, // backslash then quote
		{"a\nb\"c\\", `a\nb\"c\\`},
	} {
		if got := escapeLabel(tc.in); got != tc.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}

	// Escaped values must render as exactly one exposition line.
	r2 := NewRegistry()
	r2.CounterVec("one_total", "x", "v").With("line1\nline2").Inc()
	var sb2 strings.Builder
	r2.WritePrometheus(&sb2)
	if lines := strings.Count(sb2.String(), "\n"); lines != 3 { // HELP, TYPE, sample
		t.Errorf("newline in label value split the exposition:\n%s", sb2.String())
	}
}

// TestHelpEscaping: backslashes and newlines in help text escape, quotes
// pass through (the exposition format only escapes those two in HELP).
func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("he_total", "multi\nline \\ and \"quoted\"")
	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `# HELP he_total multi\nline \\ and "quoted"`
	if !strings.Contains(sb.String(), want+"\n") {
		t.Errorf("help escaping wrong:\n%s\nwant line: %s", sb.String(), want)
	}
}

// TestHistogramMonotonic: rendered bucket counts are cumulative and
// non-decreasing in le order, with +Inf equal to the total count — the
// invariant Prometheus quantile math relies on.
func TestHistogramMonotonic(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("m_seconds", "x", []float64{0.001, 0.01, 0.1, 1, 10})
	// A spread that lands in every bucket plus +Inf, with repeats.
	for _, v := range []float64{0, 0.0005, 0.002, 0.02, 0.02, 0.5, 0.5, 0.5, 2, 100, 100} {
		h.Observe(v)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)

	var prev, inf int64 = -1, -1
	buckets := 0
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "m_seconds_bucket{") {
			continue
		}
		buckets++
		var n int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &n); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Errorf("bucket counts not monotone: %q after %d", line, prev)
		}
		prev = n
		if strings.Contains(line, `le="+Inf"`) {
			inf = n
		}
	}
	if buckets != 6 {
		t.Fatalf("got %d bucket lines, want 6:\n%s", buckets, sb.String())
	}
	if inf != h.Count() {
		t.Errorf("+Inf bucket %d != count %d", inf, h.Count())
	}
}

// TestGaugeVec: labeled gauges share children across With calls and
// render per-label samples.
func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("gv", "x", "route")
	v.With("query").Set(1.5)
	v.With("query").Add(0.5)
	v.With("admin").Set(3)
	if got := v.With("query").Value(); got != 2 {
		t.Errorf("gauge vec child = %v, want 2", got)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	for _, want := range []string{`gv{route="admin"} 3`, `gv{route="query"} 2`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %q:\n%s", want, sb.String())
		}
	}
}

// TestBuildInfo: the build-identity gauge renders a constant 1 with the
// identity in labels, and the start-time gauge reads as a plausible
// recent unix time.
func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.GoVersion == "" || b.Version == "" {
		t.Fatalf("empty build identity: %+v", b)
	}
	r := NewRegistry()
	r.RegisterBuildInfo()
	r.RegisterBuildInfo() // idempotent
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, `voodoo_build_info{version="`) ||
		!strings.Contains(out, `go_version="`+b.GoVersion+`"`) ||
		!strings.Contains(out, "} 1\n") {
		t.Errorf("build info gauge malformed:\n%s", out)
	}
	start := float64(processStart.UnixNano()) / 1e9
	if start < 1e9 || start > 1e10 {
		t.Errorf("implausible process start %v", start)
	}
	if !strings.Contains(out, "# TYPE voodoo_process_start_time_seconds gauge") {
		t.Errorf("start-time gauge missing:\n%s", out)
	}
}

// TestConcurrentUpdates hammers one counter, one vec child and one
// histogram from many goroutines while scraping — the -race gate for the
// registry's lock-free update paths.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "x")
	v := r.CounterVec("cv_total", "x", "k")
	h := r.Histogram("ch", "x", []float64{1, 10})

	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				v.With("a").Inc()
				h.Observe(float64(i % 12))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			r.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	<-done

	if c.Value() != workers*each {
		t.Errorf("counter = %d, want %d", c.Value(), workers*each)
	}
	if v.With("a").Value() != workers*each {
		t.Errorf("vec child = %d, want %d", v.With("a").Value(), workers*each)
	}
	if h.Count() != workers*each {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*each)
	}
}

// TestRuntimeSampler: the curated runtime metrics register and produce
// plausible values.
func TestRuntimeSampler(t *testing.T) {
	r := NewRegistry()
	r.RegisterRuntime()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, name := range []string{"go_goroutines", "go_heap_objects_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Errorf("runtime metric %s missing:\n%s", name, out)
		}
	}
	if readRuntime("/sched/goroutines:goroutines") < 1 {
		t.Errorf("goroutine count implausible")
	}
}
