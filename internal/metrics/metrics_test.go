package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden locks in the exact exposition format: family
// ordering, HELP/TYPE lines, label rendering, histogram bucket lines.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("zz_last_total", "Sorted last despite registration order.")
	c.Add(3)

	v := r.CounterVec("app_errors_total", "Errors by kind.", "kind")
	v.With("bytes").Add(2)
	v.With("deadline") // registered but never incremented: renders as 0
	v.With("extent").Inc()

	g := r.Gauge("app_temperature", "A settable value.")
	g.Set(36.6)

	r.GaugeFunc("app_active", "Scrape-time value.", func() float64 { return 7 })

	h := r.Histogram("app_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // le=0.01
	h.Observe(0.01)  // boundary: inclusive, le=0.01
	h.Observe(0.5)   // le=1
	h.Observe(3)     // +Inf

	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `# HELP app_active Scrape-time value.
# TYPE app_active gauge
app_active 7
# HELP app_errors_total Errors by kind.
# TYPE app_errors_total counter
app_errors_total{kind="bytes"} 2
app_errors_total{kind="deadline"} 0
app_errors_total{kind="extent"} 1
# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.01"} 2
app_latency_seconds_bucket{le="0.1"} 2
app_latency_seconds_bucket{le="1"} 3
app_latency_seconds_bucket{le="+Inf"} 4
app_latency_seconds_sum 3.515
app_latency_seconds_count 4
# HELP app_temperature A settable value.
# TYPE app_temperature gauge
app_temperature 36.6
# HELP zz_last_total Sorted last despite registration order.
# TYPE zz_last_total counter
zz_last_total 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramBuckets pins the bucket-boundary math: le is inclusive,
// observations beyond the last bound land in +Inf, cumulative counts and
// sum/count are exact.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "x", []float64{1, 2, 4})

	obs := []float64{0, 1, 1.0000001, 2, 2.5, 4, 4.0001, 100}
	for _, v := range obs {
		h.Observe(v)
	}
	// raw (non-cumulative) expectations per bucket: le=1: {0,1}, le=2:
	// {1.0000001,2}, le=4: {2.5,4}, +Inf: {4.0001,100}
	wantRaw := []int64{2, 2, 2, 2}
	for i, w := range wantRaw {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d: got %d observations, want %d", i, got, w)
		}
	}
	if h.Count() != int64(len(obs)) {
		t.Errorf("Count() = %d, want %d", h.Count(), len(obs))
	}
	var sum float64
	for _, v := range obs {
		sum += v
	}
	if math.Abs(h.Sum()-sum) > 1e-9 {
		t.Errorf("Sum() = %v, want %v", h.Sum(), sum)
	}

	// Default buckets are used when no bounds are given and must ascend.
	d := r.Histogram("d", "x", nil)
	if len(d.bounds) != len(DefBuckets) {
		t.Fatalf("default buckets not applied")
	}
}

// TestIdempotentRegistration verifies same-name registration returns the
// same collector and conflicting types panic.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "x")
	b := r.Counter("c_total", "x")
	if a != b {
		t.Errorf("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Errorf("counters not shared")
	}

	v1 := r.CounterVec("v_total", "x", "k")
	v2 := r.CounterVec("v_total", "x", "k")
	v1.With("a").Add(5)
	if v2.With("a").Value() != 5 {
		t.Errorf("vec children not shared")
	}

	defer func() {
		if recover() == nil {
			t.Errorf("type conflict did not panic")
		}
	}()
	r.Gauge("c_total", "x")
}

// TestFuncReplacement: func-backed collectors re-bind on re-registration
// (a restarted server replaces its closure instead of panicking).
func TestFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("g", "x", func() float64 { return 1 })
	r.GaugeFunc("g", "x", func() float64 { return 2 })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "g 2\n") {
		t.Errorf("closure not replaced:\n%s", sb.String())
	}
}

// TestLabelEscaping: quotes, backslashes and newlines in label values
// must not corrupt the exposition format.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("e_total", "x", "q").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `e_total{q="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaping wrong:\n%s\nwant line: %s", sb.String(), want)
	}
}

// TestConcurrentUpdates hammers one counter, one vec child and one
// histogram from many goroutines while scraping — the -race gate for the
// registry's lock-free update paths.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "x")
	v := r.CounterVec("cv_total", "x", "k")
	h := r.Histogram("ch", "x", []float64{1, 10})

	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				v.With("a").Inc()
				h.Observe(float64(i % 12))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			r.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	<-done

	if c.Value() != workers*each {
		t.Errorf("counter = %d, want %d", c.Value(), workers*each)
	}
	if v.With("a").Value() != workers*each {
		t.Errorf("vec child = %d, want %d", v.With("a").Value(), workers*each)
	}
	if h.Count() != workers*each {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*each)
	}
}

// TestRuntimeSampler: the curated runtime metrics register and produce
// plausible values.
func TestRuntimeSampler(t *testing.T) {
	r := NewRegistry()
	r.RegisterRuntime()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, name := range []string{"go_goroutines", "go_heap_objects_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Errorf("runtime metric %s missing:\n%s", name, out)
		}
	}
	if readRuntime("/sched/goroutines:goroutines") < 1 {
		t.Errorf("goroutine count implausible")
	}
}
