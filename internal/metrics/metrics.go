// Package metrics is the process-wide metrics layer: a pure-stdlib
// registry of counters, gauges and fixed-bucket histograms, rendered in
// Prometheus text exposition format for the diagnostics server to scrape.
//
// Design constraints, in order:
//
//   - Hot-path cost. A Counter.Add is one atomic add; a Histogram.Observe
//     is one atomic bucket add plus a CAS-loop float add for the sum.
//     Nothing on the update path takes a lock or allocates.
//   - One source of truth. Subsystems that already keep their own atomic
//     counters (package trace's cumulative execution counters) are bridged
//     with CounterFunc/GaugeFunc closures that read the existing atomics
//     at scrape time, so no value is ever double-counted.
//   - Deterministic output. WritePrometheus renders families in name
//     order and labeled children in label order, so the exposition format
//     can be locked in by a golden test.
//
// Registration is idempotent: asking for an existing name with the same
// type returns the existing collector (func-backed collectors replace
// their closure instead, so a restarted subsystem re-binds cleanly), and
// a type conflict panics at registration time — misregistration is a
// programming error, not a runtime condition.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric type strings, as the exposition format spells them.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Registry holds metric families and renders them for scraping. The zero
// value is not usable; call NewRegistry (or use Default).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// Default is the process-wide registry. Package-level constructors
// register on it, and the diagnostics server scrapes it. Go runtime
// metrics (goroutines, heap, GC) are pre-registered.
var Default = func() *Registry {
	r := NewRegistry()
	r.RegisterRuntime()
	return r
}()

// NewRegistry returns an empty registry (tests use private registries to
// keep golden output stable).
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// family is one named metric family: a plain metric is a family with a
// single unlabeled child, a vec family has one child per label value set.
type family struct {
	name   string
	help   string
	typ    string
	labels []string // label names for vec families; nil otherwise

	mu       sync.Mutex
	children map[string]metric // keyed by rendered label pairs ("" = unlabeled)
}

// metric is anything that can render its sample lines.
type metric interface {
	// write emits the metric's sample lines; labels is the rendered label
	// pair list without braces ("" for unlabeled).
	write(w io.Writer, name, labels string)
}

// lookup returns the family named name, creating it on first use, and
// panics when an existing family disagrees on type or label names.
func (r *Registry) lookup(name, help, typ string, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("metrics: %s already registered as %s, asked for %s", name, f.typ, typ))
		}
		if strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("metrics: %s already registered with labels %v, asked for %v", name, f.labels, labels))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, children: map[string]metric{}}
	r.fams[name] = f
	return f
}

// child returns the metric registered under key, creating it with mk on
// first use. When replace is set, an existing child is overwritten
// (func-backed collectors re-bind), otherwise the existing child must be
// assignable to the same concrete type, which lookup's type check already
// guarantees.
func (f *family) child(key string, replace bool, mk func() metric) metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok && !replace {
		return m
	}
	m := mk()
	f.children[key] = m
	return m
}

// --- counters ---

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be non-negative; Add does not
// check, counters are trusted internal callers).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name, labels string) {
	writeSample(w, name, labels, float64(c.v.Load()))
}

// Counter registers (or returns) the plain counter named name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, typeCounter, nil)
	return f.child("", false, func() metric { return &Counter{} }).(*Counter)
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for subsystems that keep their own atomics.
// Re-registering replaces the closure.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, typeCounter, nil)
	f.child("", true, func() metric { return funcMetric(fn) })
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct{ fam *family }

// CounterVec registers (or returns) the labeled counter family named name.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	for _, l := range labelNames {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q", l))
		}
	}
	return &CounterVec{fam: r.lookup(name, help, typeCounter, labelNames)}
}

// With returns the child counter for the given label values (one per
// label name, in registration order). Children appear in the exposition
// output as soon as they exist, so callers that want zero-valued series
// visible pre-create them at startup.
func (v *CounterVec) With(values ...string) *Counter {
	key := renderLabels(v.fam.labels, values)
	return v.fam.child(key, false, func() metric { return &Counter{} }).(*Counter)
}

// --- gauges ---

// Gauge is a settable float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; gauges are low-frequency).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name, labels string) {
	writeSample(w, name, labels, g.Value())
}

// Gauge registers (or returns) the plain gauge named name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, typeGauge, nil)
	return f.child("", false, func() metric { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
// Re-registering replaces the closure.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, typeGauge, nil)
	f.child("", true, func() metric { return funcMetric(fn) })
}

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct{ fam *family }

// GaugeVec registers (or returns) the labeled gauge family named name.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	for _, l := range labelNames {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q", l))
		}
	}
	return &GaugeVec{fam: r.lookup(name, help, typeGauge, labelNames)}
}

// With returns the child gauge for the given label values (one per label
// name, in registration order).
func (v *GaugeVec) With(values ...string) *Gauge {
	key := renderLabels(v.fam.labels, values)
	return v.fam.child(key, false, func() metric { return &Gauge{} }).(*Gauge)
}

// funcMetric is a scrape-time-evaluated collector.
type funcMetric func() float64

func (f funcMetric) write(w io.Writer, name, labels string) {
	writeSample(w, name, labels, f())
}

// --- histograms ---

// DefBuckets are the default latency bucket upper bounds, in seconds:
// 100µs to 60s, roughly ×2.5 per step — wide enough to hold both a fused
// Q6 at small scale and a multi-phase join query under load.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket histogram. Buckets are cumulative only at
// render time; Observe touches exactly one bucket counter plus the sum.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	sum    Gauge          // float accumulator (CAS add)
}

// Observe records v. Bucket semantics follow Prometheus: an observation
// lands in the first bucket whose upper bound is >= v (`le`, inclusive).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

func (h *Histogram) write(w io.Writer, name, labels string) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(w, name+"_bucket", joinLabels(labels, `le="`+formatFloat(b)+`"`), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(w, name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(cum))
	writeSample(w, name+"_sum", labels, h.Sum())
	writeSample(w, name+"_count", labels, float64(cum))
}

// Histogram registers (or returns) the histogram named name with the
// given bucket upper bounds (nil = DefBuckets). The first registration's
// buckets win.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s: bucket bounds not ascending at %d", name, i))
		}
	}
	f := r.lookup(name, help, typeHistogram, nil)
	return f.child("", false, func() metric {
		b := append([]float64(nil), bounds...)
		return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	}).(*Histogram)
}

// --- exposition ---

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), families in name order, labeled children in
// label order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, k := range keys {
			f.children[k].write(w, f.name, k)
		}
		f.mu.Unlock()
	}
}

// Handler returns an http.Handler serving the registry in exposition
// format — the /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// --- package-level constructors on Default ---

// NewCounter registers (or returns) a counter on the Default registry.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// NewCounterFunc registers a scrape-time counter on the Default registry.
func NewCounterFunc(name, help string, fn func() float64) { Default.CounterFunc(name, help, fn) }

// NewCounterVec registers (or returns) a labeled counter family on the
// Default registry.
func NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return Default.CounterVec(name, help, labelNames...)
}

// NewGauge registers (or returns) a gauge on the Default registry.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// NewGaugeFunc registers a scrape-time gauge on the Default registry.
func NewGaugeFunc(name, help string, fn func() float64) { Default.GaugeFunc(name, help, fn) }

// NewGaugeVec registers (or returns) a labeled gauge family on the
// Default registry.
func NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return Default.GaugeVec(name, help, labelNames...)
}

// NewHistogram registers (or returns) a histogram on the Default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return Default.Histogram(name, help, bounds)
}

// --- rendering helpers ---

func writeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatFloat(v))
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders `k="v"` pairs in label-name order. The pair list
// doubles as the child map key, which keeps exposition output sorted.
func renderLabels(names, values []string) string {
	if len(names) != len(values) {
		panic(fmt.Sprintf("metrics: want %d label values, got %d", len(names), len(values)))
	}
	var sb strings.Builder
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	return sb.String()
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
