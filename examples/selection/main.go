// Selection: the paper's Figure 1 / Figure 15 study as a runnable example.
//
// The same Voodoo selection program compiles into three implementations —
// branching, branch-free (predicated), and vectorized — by flipping the
// Predication option and the control vector's run length. The example runs
// all three over a selectivity sweep, verifies they agree, and prices them
// on the CPU and GPU models to show the portability tradeoff the paper
// opens with: predication helps mid-selectivity CPUs and does nothing for
// GPUs.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"voodoo/internal/compile"
	"voodoo/internal/core"
	"voodoo/internal/device"
	"voodoo/internal/interp"
	"voodoo/internal/vector"
)

// selectSum builds: select sum(v2) where v1 < threshold, with the given
// control-vector run length (the tuning knob).
func selectSum(threshold float64, runLen int) *core.Program {
	b := core.NewBuilder()
	in := b.Load("facts")
	pred := b.Less(b.Project("v", in, "v1"), "", b.ConstantF(threshold), "")
	ids := b.Range(in)
	fold := b.Project("fold", b.Divide(ids, b.Constant(int64(runLen))), "")
	pf := b.Zip("p", pred, "", "fold", fold, "fold")
	sel := b.FoldSelect(pf, "fold", "p")
	g := b.Gather(in, sel, "")
	b.FoldSum(g, "", "v2")
	return b.Program()
}

func main() {
	n := 1 << 18
	r := rand.New(rand.NewSource(7))
	v1 := make([]float64, n)
	v2 := make([]float64, n)
	for i := range v1 {
		v1[i] = r.Float64()
		v2[i] = r.Float64()
	}
	st := interp.MemStorage{"facts": vector.New(n).
		Set("v1", vector.NewFloat(v1)).
		Set("v2", vector.NewFloat(v2))}

	cpu := device.CPU(1)
	gpu := device.GPU()

	fmt.Printf("%-12s %-14s %-14s %-14s %-14s\n",
		"selectivity", "branch/cpu", "predic/cpu", "branch/gpu", "predic/gpu")
	for _, sel := range []float64{0.01, 0.1, 0.5, 0.9} {
		var times []float64
		var sums []float64
		for _, cfg := range []struct {
			pred   bool
			model  *device.Model
			runLen int
		}{
			{false, cpu, n},
			{true, cpu, 4096}, // predication + cache-sized chunks (vectorized)
			{false, gpu, 256},
			{true, gpu, 256},
		} {
			prog := selectSum(sel, cfg.runLen)
			plan, err := compile.Compile(prog, st, compile.Options{Predication: cfg.pred})
			if err != nil {
				log.Fatal(err)
			}
			plan.CollectStats = true
			res, err := plan.Run()
			if err != nil {
				log.Fatal(err)
			}
			times = append(times, cfg.model.Time(&res.Stats))
			sums = append(sums, rootSum(prog, res))
		}
		for _, s := range sums[1:] {
			// Summation order differs between run lengths; allow float
			// round-off.
			if diff := s - sums[0]; diff > 1e-6 || diff < -1e-6 {
				log.Fatalf("implementations disagree: %v", sums)
			}
		}
		fmt.Printf("%-12.2f %-14.6f %-14.6f %-14.6f %-14.6f\n",
			sel, times[0], times[1], times[2], times[3])
	}
	fmt.Println("\nAll four implementations returned identical sums; only their cost differs.")
	fmt.Println("Vectorized predication wins mid-selectivity on the CPU (no mispredictions,")
	fmt.Println("cache-resident position chunks); on the GPU there is nothing to win —")
	fmt.Println("SIMT never speculates.")
}

// rootSum extracts the single root value of the plan result.
func rootSum(prog *core.Program, res *compile.Result) float64 {
	root := core.Ref(len(prog.Stmts) - 1)
	return res.Values[root].SingleCol().Float(0)
}
