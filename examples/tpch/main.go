// TPC-H: the macrobenchmark of the paper's evaluation as a runnable
// example. Generates a small TPC-H catalog, runs a query through every
// engine of the reproduction — the Voodoo compiling backend, the reference
// interpreter, the Ocelot-style bulk engine, and the HyPer-style pipelined
// baseline — verifies that all four agree, and prices each on the device
// models.
package main

import (
	"fmt"
	"log"
	"math"

	"voodoo/internal/baseline/hyper"
	"voodoo/internal/baseline/ocelot"
	"voodoo/internal/device"
	"voodoo/internal/rel"
	"voodoo/internal/tpch"
)

func main() {
	cat := tpch.Generate(tpch.Config{SF: 0.01, Seed: 42})
	fmt.Printf("catalog: %d lineitems, %d orders\n\n",
		cat.Table("lineitem").N, cat.Table("orders").N)

	cpu := device.CPU(8)
	gpu := device.GPU()

	for _, num := range []int{1, 5, 6, 19} {
		qf, err := tpch.Query(num)
		if err != nil {
			log.Fatal(err)
		}

		voodoo := &rel.Engine{Cat: cat, Backend: rel.Compiled, CollectStats: true}
		vres, vstats, err := qf(voodoo)
		if err != nil {
			log.Fatal(err)
		}

		interp := &rel.Engine{Cat: cat, Backend: rel.Interpreted}
		ires, _, err := qf(interp)
		if err != nil {
			log.Fatal(err)
		}

		bulk := ocelot.New(cat)
		ores, ostats, err := qf(bulk)
		if err != nil {
			log.Fatal(err)
		}

		hy := &hyper.Engine{Cat: cat}
		hres, hstats, err := qf(hy)
		if err != nil {
			log.Fatal(err)
		}

		mustAgree(num, vres, ires)
		mustAgree(num, vres, ores)
		mustAgree(num, vres, hres)

		fmt.Printf("Q%-3d %d rows — engines agree\n", num, len(vres.Rows))
		fmt.Printf("     Voodoo  cpu %7.2f ms   gpu %7.2f ms\n",
			cpu.Time(vstats)*1000, gpu.Time(vstats)*1000)
		fmt.Printf("     Ocelot  cpu %7.2f ms   gpu %7.2f ms\n",
			cpu.Time(ostats)*1000, gpu.Time(ostats)*1000)
		fmt.Printf("     HyPeR   cpu %7.2f ms   (CPU-only)\n\n", cpu.Time(hstats)*1000)
	}

	// And one ad-hoc look at a result.
	q1, _ := tpch.Query(1)
	res, _, err := q1(&rel.Engine{Cat: cat, Backend: rel.Compiled})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q1 result (flags decoded):")
	for _, row := range res.Rows {
		fmt.Printf("  %s/%s  qty=%.0f  count=%.0f  avg_disc=%.4f\n",
			res.Decode("l_returnflag", row["l_returnflag"]),
			res.Decode("l_linestatus", row["l_linestatus"]),
			row["sum_qty"], row["count_order"], row["avg_disc"])
	}
}

func mustAgree(num int, a, b *rel.Result) {
	if len(a.Rows) != len(b.Rows) {
		log.Fatalf("q%d: row count mismatch %d vs %d", num, len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for _, c := range a.Cols {
			av, bv := a.Rows[i][c], b.Rows[i][c]
			if math.Abs(av-bv) > 1e-6*math.Max(1, math.Abs(av)) {
				log.Fatalf("q%d row %d col %s: %g vs %g", num, i, c, av, bv)
			}
		}
	}
}
