// Layout: the paper's Figure 14 "just-in-time layout transformation" as a
// runnable example.
//
// Resolving positions into two columns of the same table can be done with
// one loop, two loops, or — after transforming the table from columnar to
// row-wise layout on the fly — one loop with colocated fields. Which wins
// depends on the lookup pattern and the target size relative to the cache.
// All three are a handful of algebra lines apart; the example prints the
// generated fragments so the difference is visible.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"voodoo/internal/compile"
	"voodoo/internal/core"
	"voodoo/internal/device"
	"voodoo/internal/interp"
	"voodoo/internal/vector"
)

const (
	lookups  = 1 << 17
	tableLen = 1 << 15
)

// singleLoop resolves both columns in one pass.
func singleLoop() *core.Program {
	b := core.NewBuilder()
	pos := b.Load("pos")
	t1 := b.Load("c1")
	t2 := b.Load("c2")
	g := b.Gather(b.Zip("c1", t1, "", "c2", t2, ""), pos, "")
	sum := b.Arith(core.OpAdd, "s", g, "c1", g, "c2")
	b.FoldSum(sum, "", "")
	return b.Program()
}

// separateLoops resolves one column per pass (half the working set each).
func separateLoops() *core.Program {
	b := core.NewBuilder()
	pos := b.Load("pos")
	t1 := b.Load("c1")
	t2 := b.Load("c2")
	s1 := b.FoldSum(b.Gather(t1, pos, ""), "", "")
	s2 := b.FoldSum(b.Gather(t2, pos, ""), "", "")
	b.Add(s1, s2)
	return b.Program()
}

// layoutTransform interleaves the columns row-wise first; the two fields of
// a row then share a cache line.
func layoutTransform() *core.Program {
	b := core.NewBuilder()
	pos := b.Load("pos")
	t1 := b.Load("c1")
	t2 := b.Load("c2")
	ids2 := b.RangeN(0, 2*tableLen, 1)
	half := b.Project("h", b.Divide(ids2, b.Constant(2)), "")
	odd := b.Modulo(ids2, b.Constant(2))
	g1 := b.Gather(t1, half, "h")
	g2 := b.Gather(t2, half, "h")
	even := b.Arith(core.OpMultiply, "v", g1, "", b.Subtract(b.Constant(1), odd), "")
	oddV := b.Arith(core.OpMultiply, "v", g2, "", odd, "")
	row := b.Materialize(b.Add(even, oddV), ids2, "")
	p2 := b.Multiply(b.Project("p", pos, ""), b.Constant(2))
	pe := b.Upsert(pos, "pe", p2, "")
	po := b.Upsert(pos, "po", b.Add(p2, b.Constant(1)), "")
	v1 := b.Gather(row, pe, "pe")
	v2 := b.Gather(row, po, "po")
	b.FoldSum(b.Add(v1, v2), "", "")
	return b.Program()
}

func main() {
	r := rand.New(rand.NewSource(5))
	pos := make([]int64, lookups)
	for i := range pos {
		pos[i] = r.Int63n(tableLen)
	}
	c1 := make([]float64, tableLen)
	c2 := make([]float64, tableLen)
	for i := range c1 {
		c1[i] = float64(i)
		c2[i] = float64(i) / 2
	}
	st := interp.MemStorage{
		"pos": vector.New(lookups).Set("p", vector.NewInt(pos)),
		"c1":  vector.New(tableLen).Set("v", vector.NewFloat(c1)),
		"c2":  vector.New(tableLen).Set("v", vector.NewFloat(c2)),
	}

	// Scale the cache model so the table is DRAM-resident (as the paper's
	// 128MB case is against a real 8MB L3).
	cpu := device.CPU(1)
	cpu.Tiers[2].Size = int64(tableLen) * 8

	programs := map[string]*core.Program{
		"Single Loop":      singleLoop(),
		"Separate Loops":   separateLoops(),
		"Layout Transform": layoutTransform(),
	}
	var reference float64
	haveRef := false
	for _, name := range []string{"Single Loop", "Separate Loops", "Layout Transform"} {
		prog := programs[name]
		plan, err := compile.Compile(prog, st, compile.Options{})
		if err != nil {
			log.Fatal(err)
		}
		plan.CollectStats = true
		res, err := plan.Run()
		if err != nil {
			log.Fatal(err)
		}
		root := core.Ref(len(prog.Stmts) - 1)
		sum := res.Values[root].SingleCol().Float(0)
		if !haveRef {
			reference, haveRef = sum, true
		} else if d := sum - reference; d > 1e-6 || d < -1e-6 {
			log.Fatalf("%s disagrees: %g vs %g", name, sum, reference)
		}
		fmt.Printf("%-18s sum=%.1f  simulated CPU time=%.6fs  fragments=%d\n",
			name, sum, cpu.Time(&res.Stats), len(plan.Kernel().Frags))
	}
	fmt.Println("\nWith a DRAM-resident target and random positions, the transform pays for")
	fmt.Println("itself: two random misses per lookup become one miss plus one colocated hit.")
}
