// Quickstart: the paper's Figure 3 and Figure 4, end to end.
//
// Builds the multithreaded hierarchical aggregation of Figure 3 in the
// Voodoo algebra, runs it on the interpreter and the compiling backend, and
// then applies Figure 4's famous two-line diff — Divide (block partitions)
// becomes Modulo (SIMD lanes) — to show that retuning a Voodoo program for
// a different parallelism model is a metadata change, not a rewrite.
package main

import (
	"fmt"
	"log"

	"voodoo/internal/compile"
	"voodoo/internal/core"
	"voodoo/internal/interp"
	"voodoo/internal/opencl"
	"voodoo/internal/vector"
)

// buildFigure3 is the paper's Figure 3 program: partition the input into
// blocks of partitionSize, sum each block in parallel, then reduce.
func buildFigure3(partitionSize int64) *core.Program {
	b := core.NewBuilder()
	input := b.Label(b.Load("input"), "input")
	ids := b.Label(b.Range(input), "ids")
	psize := b.Label(b.Constant(partitionSize), "partitionSize")
	partitionIDs := b.Label(b.Project("partition", b.Divide(ids, psize), ""), "partitionIDs")
	inputWPart := b.Label(
		b.Zip("val", input, "val", "partition", partitionIDs, "partition"), "inputWPart")
	pSum := b.Label(b.FoldSum(inputWPart, "partition", "val"), "pSum")
	b.Label(b.GlobalSum(pSum, ""), "totalSum")
	return b.Program()
}

// buildFigure4 applies the paper's textual diff: the constant now encodes
// the number of SIMD lanes and the partition ids are circular; a Partition
// and Scatter regroup the lanes — which the compiler turns into pure index
// arithmetic (virtual scatter), never materializing anything.
func buildFigure4(laneCount int64) *core.Program {
	b := core.NewBuilder()
	input := b.Label(b.Load("input"), "input")
	ids := b.Label(b.Range(input), "ids")
	lanes := b.Label(b.Constant(laneCount), "laneCount")
	partitionIDs := b.Label(b.Project("partition", b.Modulo(ids, lanes), ""), "partitionIDs")
	inputWPart := b.Label(
		b.Zip("val", input, "val", "partition", partitionIDs, "partition"), "inputWPart")
	positions := b.Label(
		b.Partition("pos", partitionIDs, "partition", b.RangeN(0, int(laneCount), 1), ""), "positions")
	posVec := b.Upsert(inputWPart, "pos", positions, "pos")
	scattered := b.Label(b.Scatter(inputWPart, input, "", posVec, "pos"), "partInput")
	pSum := b.Label(b.FoldSum(scattered, "partition", "val"), "pSum")
	b.Label(b.GlobalSum(pSum, ""), "totalSum")
	return b.Program()
}

func main() {
	// A little input: 1..64.
	n := 64
	vals := make([]int64, n)
	var want int64
	for i := range vals {
		vals[i] = int64(i + 1)
		want += vals[i]
	}
	st := interp.MemStorage{"input": vector.New(n).Set("val", vector.NewInt(vals))}

	fig3 := buildFigure3(8)
	fmt.Println("=== Figure 3: multithreaded hierarchical aggregation ===")
	fmt.Println(fig3)

	// Reference semantics: the interpreter (paper §3.2).
	ires, err := interp.Run(fig3, st)
	if err != nil {
		log.Fatal(err)
	}
	root := core.Ref(len(fig3.Stmts) - 1)
	fmt.Printf("interpreter total = %d (want %d)\n\n", ires.Value(root).SingleCol().Int(0), want)

	// The compiling backend (paper §3.1): fused fragments.
	plan, err := compile.Compile(fig3, st, compile.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cres, err := plan.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled total   = %d\n\n", cres.Values[root].SingleCol().Int(0))
	fmt.Println("fragments generated for Figure 3:")
	fmt.Println(plan.Kernel())

	// The two-line retune (Figure 4): Divide -> Modulo.
	fig4 := buildFigure4(4)
	fmt.Println("=== Figure 4: the same program retuned to SIMD lanes ===")
	fmt.Println(fig4)
	plan4, err := compile.Compile(fig4, st, compile.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cres4, err := plan4.Run()
	if err != nil {
		log.Fatal(err)
	}
	root4 := core.Ref(len(fig4.Stmts) - 1)
	fmt.Printf("compiled total   = %d (the scatter dissolved into strided index arithmetic)\n\n",
		cres4.Values[root4].SingleCol().Int(0))

	fmt.Println("OpenCL the backend would ship for Figure 4:")
	fmt.Println(opencl.Generate(plan4.Kernel()))
}
